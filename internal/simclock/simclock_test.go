package simclock

import (
	"math/rand"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	c := New(1)
	var got []string
	c.Schedule(3, "c", func() { got = append(got, "c") })
	c.Schedule(1, "a", func() { got = append(got, "a") })
	c.Schedule(2, "b", func() { got = append(got, "b") })
	for c.Step() {
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Now() != 3 {
		t.Fatalf("Now = %v, want 3", c.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	c := New(1)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(1, "e", func() { got = append(got, i) })
	}
	c.RunUntil(1)
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := New(1)
	c.Schedule(5, "x", func() {})
	c.RunUntil(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	c.Schedule(4, "bad", func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	c := New(1)
	ran := false
	c.Schedule(2, "e", func() { ran = true })
	n := c.RunUntil(10)
	if n != 1 || !ran {
		t.Fatalf("n=%d ran=%v", n, ran)
	}
	if c.Now() != 10 {
		t.Fatalf("Now = %v, want 10", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d", c.Pending())
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	c := New(1)
	c.Schedule(20, "late", func() {})
	if n := c.RunUntil(10); n != 0 {
		t.Fatalf("ran %d events, want 0", n)
	}
	if c.Pending() != 1 {
		t.Fatal("future event lost")
	}
}

func TestAfter(t *testing.T) {
	c := New(1)
	c.Schedule(5, "setup", func() {
		c.After(3, "later", func() {
			if c.Now() != 8 {
				t.Errorf("After fired at %v, want 8", c.Now())
			}
		})
	})
	c.RunUntil(100)
}

func TestTicker(t *testing.T) {
	c := New(1)
	var times []float64
	c.Ticker(2, "tick", func(now float64) bool {
		times = append(times, now)
		return now < 6
	})
	c.RunUntil(100)
	want := []float64{2, 4, 6}
	if len(times) != len(want) {
		t.Fatalf("ticks = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", times, want)
		}
	}
}

func TestTickerBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive interval")
		}
	}()
	New(1).Ticker(0, "bad", func(float64) bool { return false })
}

func TestStreamsDeterministic(t *testing.T) {
	a := New(42).Stream("gps")
	b := New(42).Stream("gps")
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed+name streams diverged")
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	c := New(42)
	a := c.Stream("gps")
	b := c.Stream("battery")
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("differently named streams produced identical sequences")
	}
	// Re-fetching a stream returns the same generator, not a reset one.
	if c.Stream("gps") != a {
		t.Fatal("Stream must memoize")
	}
}

func TestStepEmpty(t *testing.T) {
	c := New(1)
	if c.Step() {
		t.Fatal("Step on empty queue must return false")
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := New(7)
		for j := 0; j < 100; j++ {
			c.Schedule(float64(j%10), "e", func() {})
		}
		c.RunUntil(10)
	}
}

// TestCountingSourceSequencesUnchanged pins the stream sequences against
// the raw generator the seed repo used: wrapping the source to count
// draws must not change a single emitted value, for every rand.Rand
// method the codebase uses.
func TestCountingSourceSequencesUnchanged(t *testing.T) {
	const seed = 42
	c := New(seed)
	var h uint64 = 1469598103934665603
	for _, b := range []byte("wind") {
		h ^= uint64(b)
		h *= 1099511628211
	}
	raw := rand.New(rand.NewSource(seed ^ int64(h)))
	got := c.Stream("wind")
	for i := 0; i < 500; i++ {
		switch i % 5 {
		case 0:
			if a, b := got.Float64(), raw.Float64(); a != b {
				t.Fatalf("Float64 #%d: %v != %v", i, a, b)
			}
		case 1:
			if a, b := got.NormFloat64(), raw.NormFloat64(); a != b {
				t.Fatalf("NormFloat64 #%d: %v != %v", i, a, b)
			}
		case 2:
			if a, b := got.Intn(97), raw.Intn(97); a != b {
				t.Fatalf("Intn #%d: %v != %v", i, a, b)
			}
		case 3:
			if a, b := got.Int63(), raw.Int63(); a != b {
				t.Fatalf("Int63 #%d: %v != %v", i, a, b)
			}
		case 4:
			if a, b := got.Uint64(), raw.Uint64(); a != b {
				t.Fatalf("Uint64 #%d: %v != %v", i, a, b)
			}
		}
	}
}

// TestStreamStateRestore checks the checkpoint/restore contract: a clock
// restored from StreamStates emits exactly the values the original
// would have emitted next, across mixed draw kinds and several streams.
func TestStreamStateRestore(t *testing.T) {
	orig := New(99)
	gust := orig.Stream("world/gust")
	gps := orig.Stream("uav/gps")
	for i := 0; i < 137; i++ {
		gust.NormFloat64()
		if i%3 == 0 {
			gps.Float64()
		}
	}
	states := orig.StreamStates()
	if len(states) != 2 {
		t.Fatalf("want 2 stream states, got %d", len(states))
	}

	restored := New(99)
	restored.RestoreStreams(states)
	rg := restored.Stream("world/gust")
	rp := restored.Stream("uav/gps")
	for i := 0; i < 64; i++ {
		if a, b := gust.NormFloat64(), rg.NormFloat64(); a != b {
			t.Fatalf("gust draw %d diverged: %v != %v", i, a, b)
		}
		if a, b := gps.Intn(1000), rp.Intn(1000); a != b {
			t.Fatalf("gps draw %d diverged: %v != %v", i, a, b)
		}
	}

	// StreamStates is sorted by name for deterministic serialization.
	if states[0].Name > states[1].Name {
		t.Fatal("StreamStates must be sorted by name")
	}
}

func TestSetNow(t *testing.T) {
	c := New(1)
	c.SetNow(12.5)
	if c.Now() != 12.5 {
		t.Fatalf("SetNow: now = %v", c.Now())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetNow backwards must panic")
			}
		}()
		c.SetNow(1)
	}()
	c.Schedule(20, "e", func() {})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetNow with pending events must panic")
			}
		}()
		c.SetNow(30)
	}()
}

// TestRestoreStreamsKeepsCapturedHandles pins the in-place restore
// contract: a *rand.Rand captured before RestoreStreams (the GPS
// receiver and detector hold theirs from construction) must emit the
// restored sequence, not keep drawing from a detached generator.
func TestRestoreStreamsKeepsCapturedHandles(t *testing.T) {
	original := New(99)
	ref := original.Stream("gps/u1")
	for i := 0; i < 137; i++ {
		ref.NormFloat64()
	}
	want := make([]float64, 16)
	states := original.StreamStates()
	for i := range want {
		want[i] = ref.NormFloat64()
	}

	replay := New(99)
	captured := replay.Stream("gps/u1") // handle taken BEFORE restore
	captured.NormFloat64()              // and already advanced differently
	replay.RestoreStreams(states)
	for i, w := range want {
		if got := captured.NormFloat64(); got != w {
			t.Fatalf("captured handle draw %d: got %v want %v", i, got, w)
		}
	}

	// Streams the checkpoint never saw rewind to a fresh sequence.
	fresh := New(5)
	side := fresh.Stream("side")
	first := side.Int63()
	for i := 0; i < 9; i++ {
		side.Int63()
	}
	fresh.RestoreStreams(nil)
	if got := side.Int63(); got != first {
		t.Fatalf("unseen stream must rewind: got %v want %v", got, first)
	}
}

// TestShardStreams pins the split semantics behind cell-sharded
// scheduling: n <= 1 degrades to the plain named stream so unsharded
// callers keep the legacy draw sequence, while n > 1 yields
// deterministic per-shard sub-streams that reproduce across clocks with
// the same seed and checkpoint like any other named stream.
func TestShardStreams(t *testing.T) {
	a := New(5)
	if got := a.ShardStreams("det", 1); len(got) != 1 || got[0] != a.Stream("det") {
		t.Fatal("n=1 must return the plain named stream")
	}
	if got := a.ShardStreams("det", 0); len(got) != 1 || got[0] != a.Stream("det") {
		t.Fatal("n<=0 must return the plain named stream")
	}

	b := New(5)
	sa := a.ShardStreams("dets", 4)
	sb := b.ShardStreams("dets", 4)
	if len(sa) != 4 || len(sb) != 4 {
		t.Fatalf("shard count = %d/%d, want 4", len(sa), len(sb))
	}
	for i := range sa {
		for k := 0; k < 8; k++ {
			if x, y := sa[i].Int63(), sb[i].Int63(); x != y {
				t.Fatalf("shard %d draw %d diverges across same-seed clocks: %d != %d", i, k, x, y)
			}
		}
	}

	// Shard i is exactly the "<name>/shard%03d" stream, so a caller can
	// reach the same sequence by name (and checkpoints capture it).
	c := New(5)
	byName := c.Stream("dets/shard002")
	direct := New(5).ShardStreams("dets", 4)[2]
	for k := 0; k < 8; k++ {
		if x, y := byName.Int63(), direct.Int63(); x != y {
			t.Fatalf("shard 2 != named stream at draw %d: %d != %d", k, x, y)
		}
	}
	found := false
	for _, st := range c.StreamStates() {
		if st.Name == "dets/shard002" && st.Draws == 8 {
			found = true
		}
	}
	if !found {
		t.Error("shard stream position missing from StreamStates")
	}

	// Distinct shards must not emit the same sequence.
	d := New(5)
	sd := d.ShardStreams("dets", 2)
	same := true
	for k := 0; k < 8; k++ {
		if sd[0].Int63() != sd[1].Int63() {
			same = false
		}
	}
	if same {
		t.Error("shards 0 and 1 emitted identical sequences")
	}
}
