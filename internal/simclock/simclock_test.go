package simclock

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	c := New(1)
	var got []string
	c.Schedule(3, "c", func() { got = append(got, "c") })
	c.Schedule(1, "a", func() { got = append(got, "a") })
	c.Schedule(2, "b", func() { got = append(got, "b") })
	for c.Step() {
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Now() != 3 {
		t.Fatalf("Now = %v, want 3", c.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	c := New(1)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(1, "e", func() { got = append(got, i) })
	}
	c.RunUntil(1)
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := New(1)
	c.Schedule(5, "x", func() {})
	c.RunUntil(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	c.Schedule(4, "bad", func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	c := New(1)
	ran := false
	c.Schedule(2, "e", func() { ran = true })
	n := c.RunUntil(10)
	if n != 1 || !ran {
		t.Fatalf("n=%d ran=%v", n, ran)
	}
	if c.Now() != 10 {
		t.Fatalf("Now = %v, want 10", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d", c.Pending())
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	c := New(1)
	c.Schedule(20, "late", func() {})
	if n := c.RunUntil(10); n != 0 {
		t.Fatalf("ran %d events, want 0", n)
	}
	if c.Pending() != 1 {
		t.Fatal("future event lost")
	}
}

func TestAfter(t *testing.T) {
	c := New(1)
	c.Schedule(5, "setup", func() {
		c.After(3, "later", func() {
			if c.Now() != 8 {
				t.Errorf("After fired at %v, want 8", c.Now())
			}
		})
	})
	c.RunUntil(100)
}

func TestTicker(t *testing.T) {
	c := New(1)
	var times []float64
	c.Ticker(2, "tick", func(now float64) bool {
		times = append(times, now)
		return now < 6
	})
	c.RunUntil(100)
	want := []float64{2, 4, 6}
	if len(times) != len(want) {
		t.Fatalf("ticks = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", times, want)
		}
	}
}

func TestTickerBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive interval")
		}
	}()
	New(1).Ticker(0, "bad", func(float64) bool { return false })
}

func TestStreamsDeterministic(t *testing.T) {
	a := New(42).Stream("gps")
	b := New(42).Stream("gps")
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed+name streams diverged")
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	c := New(42)
	a := c.Stream("gps")
	b := c.Stream("battery")
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("differently named streams produced identical sequences")
	}
	// Re-fetching a stream returns the same generator, not a reset one.
	if c.Stream("gps") != a {
		t.Fatal("Stream must memoize")
	}
}

func TestStepEmpty(t *testing.T) {
	c := New(1)
	if c.Step() {
		t.Fatal("Step on empty queue must return false")
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := New(7)
		for j := 0; j < 100; j++ {
			c.Schedule(float64(j%10), "e", func() {})
		}
		c.RunUntil(10)
	}
}
