// Package simclock provides the deterministic discrete-event simulation
// kernel used by the UAV world model and the experiment harness. It
// substitutes for the wall-clock/Gazebo time base the paper's field
// trials used: every stochastic component draws from seeded RNG streams
// owned by the kernel, so an experiment re-runs bit-for-bit for a given
// seed.
package simclock

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Clock is a discrete-event simulation clock with an event queue and a
// family of named, independently seeded random streams. The zero value
// is not usable; call New.
type Clock struct {
	now     float64
	queue   eventQueue
	seq     uint64 // tie-breaker for same-time events (FIFO)
	seed    int64
	streams map[string]*rand.Rand
}

// New returns a clock starting at t=0 whose random streams derive from
// seed.
func New(seed int64) *Clock {
	return &Clock{seed: seed, streams: make(map[string]*rand.Rand)}
}

// Now returns the current simulation time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Stream returns the named random stream, creating it deterministically
// from the clock seed and the name on first use. Distinct names give
// independent streams; the same (seed, name) pair always gives the same
// sequence.
func (c *Clock) Stream(name string) *rand.Rand {
	if r, ok := c.streams[name]; ok {
		return r
	}
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	r := rand.New(rand.NewSource(c.seed ^ int64(h)))
	c.streams[name] = r
	return r
}

// Event is a scheduled callback.
type event struct {
	at   float64
	seq  uint64
	name string
	fn   func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Schedule queues fn to run at absolute simulation time at. Scheduling
// in the past (at < Now) panics: it is always a logic error in a
// discrete-event model.
func (c *Clock) Schedule(at float64, name string, fn func()) {
	if at < c.now {
		panic(fmt.Sprintf("simclock: schedule %q at %v before now %v", name, at, c.now))
	}
	c.seq++
	heap.Push(&c.queue, &event{at: at, seq: c.seq, name: name, fn: fn})
}

// After queues fn to run delay seconds from now.
func (c *Clock) After(delay float64, name string, fn func()) {
	c.Schedule(c.now+delay, name, fn)
}

// Step runs the next queued event, advancing the clock to its time. It
// reports whether an event was run.
func (c *Clock) Step() bool {
	if c.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&c.queue).(*event)
	c.now = e.at
	e.fn()
	return true
}

// RunUntil executes queued events in order until the queue is empty or
// the next event is after t, then sets the clock to t. It returns the
// number of events executed.
func (c *Clock) RunUntil(t float64) int {
	n := 0
	for c.queue.Len() > 0 && c.queue[0].at <= t {
		c.Step()
		n++
	}
	if t > c.now {
		c.now = t
	}
	return n
}

// Pending returns the number of queued events.
func (c *Clock) Pending() int { return c.queue.Len() }

// Ticker invokes fn(now) every interval seconds starting at the next
// interval boundary after now, until fn returns false.
func (c *Clock) Ticker(interval float64, name string, fn func(now float64) bool) {
	if interval <= 0 {
		panic("simclock: non-positive ticker interval")
	}
	var tick func()
	tick = func() {
		if fn(c.now) {
			c.After(interval, name, tick)
		}
	}
	c.After(interval, name, tick)
}
