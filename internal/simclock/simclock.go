// Package simclock provides the deterministic discrete-event simulation
// kernel used by the UAV world model and the experiment harness. It
// substitutes for the wall-clock/Gazebo time base the paper's field
// trials used: every stochastic component draws from seeded RNG streams
// owned by the kernel, so an experiment re-runs bit-for-bit for a given
// seed.
package simclock

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Clock is a discrete-event simulation clock with an event queue and a
// family of named, independently seeded random streams. The zero value
// is not usable; call New.
type Clock struct {
	now     float64
	queue   eventQueue
	seq     uint64 // tie-breaker for same-time events (FIFO)
	seed    int64
	streams map[string]*countingSource
	rands   map[string]*rand.Rand
}

// New returns a clock starting at t=0 whose random streams derive from
// seed.
func New(seed int64) *Clock {
	return &Clock{
		seed:    seed,
		streams: make(map[string]*countingSource),
		rands:   make(map[string]*rand.Rand),
	}
}

// Now returns the current simulation time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Seed returns the seed the clock's streams derive from.
func (c *Clock) Seed() int64 { return c.seed }

// countingSource wraps a stream's underlying generator and counts how
// many times it stepped. math/rand's generator advances exactly one
// step per Int63 or Uint64 call, so the count alone pins the stream's
// position: recreating the source from (seed, name) and drawing count
// values restores the identical state. The wrapper implements
// rand.Source64 exactly like the wrapped rngSource does, so rand.Rand's
// method selection — hence every emitted sequence — is unchanged.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.draws = 0
	s.src.Seed(seed)
}

// streamSeed derives the named stream's seed from the clock seed via
// FNV-1a, the scheme every stream has used since the seed repo.
func (c *Clock) streamSeed(name string) int64 {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return c.seed ^ int64(h)
}

// Stream returns the named random stream, creating it deterministically
// from the clock seed and the name on first use. Distinct names give
// independent streams; the same (seed, name) pair always gives the same
// sequence.
func (c *Clock) Stream(name string) *rand.Rand {
	if r, ok := c.rands[name]; ok {
		return r
	}
	src := &countingSource{src: rand.NewSource(c.streamSeed(name)).(rand.Source64)}
	r := rand.New(src)
	c.streams[name] = src
	c.rands[name] = r
	return r
}

// ShardStreams returns n deterministic sub-streams of the named stream
// family, one per shard, creating them on first use. For n <= 1 it
// degrades to the single Stream(name), so unsharded callers keep the
// legacy draw sequence bit-identical. Shard i draws from the named
// stream "<name>/shard<i>"; the split depends only on (seed, name, i),
// never on how shards are scheduled, so concurrent shards stay
// reproducible. Call this before handing the streams to concurrent
// workers: stream creation mutates the clock's registry and is not
// goroutine-safe.
func (c *Clock) ShardStreams(name string, n int) []*rand.Rand {
	if n <= 1 {
		return []*rand.Rand{c.Stream(name)}
	}
	out := make([]*rand.Rand, n)
	for i := range out {
		out[i] = c.Stream(fmt.Sprintf("%s/shard%03d", name, i))
	}
	return out
}

// StreamState records one named stream's position as the number of
// generator steps consumed since creation.
type StreamState struct {
	Name  string `json:"name"`
	Draws uint64 `json:"draws"`
}

// StreamStates returns every created stream's position, sorted by name
// for deterministic serialization.
func (c *Clock) StreamStates() []StreamState {
	states := make([]StreamState, 0, len(c.streams))
	for name, src := range c.streams {
		states = append(states, StreamState{Name: name, Draws: src.draws})
	}
	sort.Slice(states, func(i, j int) bool { return states[i].Name < states[j].Name })
	return states
}

// RestoreStreams repositions every stream to the recorded draw count.
// Existing stream objects are reset IN PLACE rather than replaced:
// components that captured a *rand.Rand at construction (GPS
// receivers, the detector) keep their handles, and those handles emit
// exactly the values the original clock would have emitted had it kept
// running. Existing streams absent from states are rewound to zero
// draws — the original run had not touched them by the checkpoint, so
// first use must see a fresh sequence.
func (c *Clock) RestoreStreams(states []StreamState) {
	want := make(map[string]uint64, len(states))
	for _, st := range states {
		want[st.Name] = st.Draws
	}
	for name, src := range c.streams {
		src.Seed(c.streamSeed(name))
		for src.draws < want[name] {
			src.Uint64()
		}
	}
	for _, st := range states {
		if _, ok := c.streams[st.Name]; ok {
			continue
		}
		c.Stream(st.Name)
		src := c.streams[st.Name]
		for src.draws < st.Draws {
			src.Uint64()
		}
	}
}

// SetNow jumps the clock to t without running events. It is the restore
// counterpart of RunUntil: callers must only use it on a quiescent
// clock (Pending() == 0), since queued events scheduled before t would
// otherwise fire late. Moving backwards panics like Schedule does.
func (c *Clock) SetNow(t float64) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: set now %v before now %v", t, c.now))
	}
	if c.queue.Len() > 0 {
		panic("simclock: SetNow on a non-quiescent clock")
	}
	c.now = t
}

// Event is a scheduled callback.
type event struct {
	at   float64
	seq  uint64
	name string
	fn   func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Schedule queues fn to run at absolute simulation time at. Scheduling
// in the past (at < Now) panics: it is always a logic error in a
// discrete-event model.
func (c *Clock) Schedule(at float64, name string, fn func()) {
	if at < c.now {
		panic(fmt.Sprintf("simclock: schedule %q at %v before now %v", name, at, c.now))
	}
	c.seq++
	heap.Push(&c.queue, &event{at: at, seq: c.seq, name: name, fn: fn})
}

// After queues fn to run delay seconds from now.
func (c *Clock) After(delay float64, name string, fn func()) {
	c.Schedule(c.now+delay, name, fn)
}

// Step runs the next queued event, advancing the clock to its time. It
// reports whether an event was run.
func (c *Clock) Step() bool {
	if c.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&c.queue).(*event)
	c.now = e.at
	e.fn()
	return true
}

// RunUntil executes queued events in order until the queue is empty or
// the next event is after t, then sets the clock to t. It returns the
// number of events executed.
func (c *Clock) RunUntil(t float64) int {
	n := 0
	for c.queue.Len() > 0 && c.queue[0].at <= t {
		c.Step()
		n++
	}
	if t > c.now {
		c.now = t
	}
	return n
}

// Pending returns the number of queued events.
func (c *Clock) Pending() int { return c.queue.Len() }

// Ticker invokes fn(now) every interval seconds starting at the next
// interval boundary after now, until fn returns false.
func (c *Clock) Ticker(interval float64, name string, fn func(now float64) bool) {
	if interval <= 0 {
		panic("simclock: non-positive ticker interval")
	}
	var tick func()
	tick = func() {
		if fn(c.now) {
			c.After(interval, name, tick)
		}
	}
	c.After(interval, name, tick)
}
