// Package deepknowledge implements a generalisation-driven white-box
// testing and runtime-uncertainty surrogate for DNN perception models,
// following DeepKnowledge (paper §III-A3; Missaoui et al. 2024). Where
// SafeML compares model *inputs* against training data, DeepKnowledge
// inspects the model's *internal neuron behaviours*:
//
//   - at design time it identifies transfer-knowledge (TK) neurons —
//     hidden units whose activation statistics respond most strongly to
//     domain shift, i.e. the units that carry generalisable semantics —
//     and buckets their training activation ranges;
//   - a test suite's coverage score is the fraction of (TK neuron,
//     bucket) combinations it exercises;
//   - at runtime, the uncertainty of a prediction is the fraction of TK
//     neurons whose activations fall outside the calibrated training
//     envelope.
package deepknowledge

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sesame/internal/neural"
)

// NeuronStat holds the design-time statistics of one hidden neuron.
type NeuronStat struct {
	// Index is the neuron's position in the flattened hidden trace.
	Index int
	Mean  float64
	Std   float64
	Min   float64
	Max   float64
	// Score is the knowledge-transfer score: standardized activation
	// displacement under domain shift. Higher = more transfer
	// knowledge.
	Score float64
}

// Analysis is the design-time artefact: TK neuron set plus calibrated
// activation envelopes, ready for coverage scoring and runtime
// uncertainty estimation.
type Analysis struct {
	net     *neural.Network
	stats   []NeuronStat // all hidden neurons
	tk      []int        // indices (into stats) of TK neurons, by descending score
	buckets int
}

// Analyze runs the design phase: collect hidden traces on the training
// set and on a shifted (out-of-domain) set, score each hidden neuron's
// knowledge transfer, and keep the topK neurons with buckets-way
// coverage partitions.
func Analyze(net *neural.Network, train, shifted [][]float64, topK, buckets int) (*Analysis, error) {
	if net == nil {
		return nil, errors.New("deepknowledge: nil network")
	}
	if len(train) == 0 || len(shifted) == 0 {
		return nil, errors.New("deepknowledge: empty train or shifted set")
	}
	if topK <= 0 || buckets < 2 {
		return nil, errors.New("deepknowledge: need topK >= 1 and buckets >= 2")
	}
	trainTraces, err := hiddenTraces(net, train)
	if err != nil {
		return nil, err
	}
	shiftTraces, err := hiddenTraces(net, shifted)
	if err != nil {
		return nil, err
	}
	width := len(trainTraces[0])
	if topK > width {
		topK = width
	}
	stats := make([]NeuronStat, width)
	for j := 0; j < width; j++ {
		var sum, sq float64
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, tr := range trainTraces {
			v := tr[j]
			sum += v
			sq += v * v
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		n := float64(len(trainTraces))
		mean := sum / n
		variance := sq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		std := math.Sqrt(variance)

		var shiftSum float64
		for _, tr := range shiftTraces {
			shiftSum += tr[j]
		}
		shiftMean := shiftSum / float64(len(shiftTraces))
		score := math.Abs(shiftMean-mean) / (std + 1e-9)
		stats[j] = NeuronStat{Index: j, Mean: mean, Std: std, Min: mn, Max: mx, Score: score}
	}
	order := make([]int, width)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return stats[order[a]].Score > stats[order[b]].Score })
	return &Analysis{net: net, stats: stats, tk: order[:topK], buckets: buckets}, nil
}

func hiddenTraces(net *neural.Network, inputs [][]float64) ([][]float64, error) {
	out := make([][]float64, len(inputs))
	for i, x := range inputs {
		_, tr, err := net.PredictTrace(x)
		if err != nil {
			return nil, fmt.Errorf("deepknowledge: input %d: %w", i, err)
		}
		out[i] = tr.Hidden()
	}
	return out, nil
}

// TKNeurons returns the selected transfer-knowledge neurons, strongest
// first.
func (a *Analysis) TKNeurons() []NeuronStat {
	out := make([]NeuronStat, len(a.tk))
	for i, idx := range a.tk {
		out[i] = a.stats[idx]
	}
	return out
}

// bucketOf maps an activation to its coverage bucket for neuron s, or
// -1 when outside the training range.
func (a *Analysis) bucketOf(s NeuronStat, v float64) int {
	if v < s.Min || v > s.Max {
		return -1
	}
	span := s.Max - s.Min
	if span <= 0 {
		return 0
	}
	b := int((v - s.Min) / span * float64(a.buckets))
	if b >= a.buckets {
		b = a.buckets - 1
	}
	return b
}

// CoverageScore returns the fraction of (TK neuron, bucket)
// combinations that the input set exercises — the DeepKnowledge test
// adequacy measure in [0,1].
func (a *Analysis) CoverageScore(inputs [][]float64) (float64, error) {
	if len(inputs) == 0 {
		return 0, errors.New("deepknowledge: empty input set")
	}
	traces, err := hiddenTraces(a.net, inputs)
	if err != nil {
		return 0, err
	}
	hit := make(map[int]map[int]bool, len(a.tk))
	for _, tr := range traces {
		for _, idx := range a.tk {
			s := a.stats[idx]
			b := a.bucketOf(s, tr[s.Index])
			if b < 0 {
				continue
			}
			if hit[idx] == nil {
				hit[idx] = make(map[int]bool, a.buckets)
			}
			hit[idx][b] = true
		}
	}
	total := len(a.tk) * a.buckets
	count := 0
	for _, m := range hit {
		count += len(m)
	}
	return float64(count) / float64(total), nil
}

// SelectForCoverage greedily picks up to k candidate inputs that
// maximise the coverage score — DeepKnowledge's test-suite
// augmentation use: given a pool of candidate images, choose the ones
// that exercise TK-neuron behaviours the existing suite misses.
// Returns the selected candidate indices in selection order.
func (a *Analysis) SelectForCoverage(candidates [][]float64, k int) ([]int, error) {
	if len(candidates) == 0 {
		return nil, errors.New("deepknowledge: empty candidate pool")
	}
	if k <= 0 {
		return nil, errors.New("deepknowledge: k must be positive")
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	traces, err := hiddenTraces(a.net, candidates)
	if err != nil {
		return nil, err
	}
	// Precompute each candidate's (neuron, bucket) hits.
	type hit struct{ neuron, bucket int }
	hits := make([][]hit, len(candidates))
	for i, tr := range traces {
		for _, idx := range a.tk {
			s := a.stats[idx]
			if b := a.bucketOf(s, tr[s.Index]); b >= 0 {
				hits[i] = append(hits[i], hit{idx, b})
			}
		}
	}
	covered := make(map[[2]int]bool)
	var selected []int
	taken := make([]bool, len(candidates))
	for len(selected) < k {
		best, bestGain := -1, -1
		for i := range candidates {
			if taken[i] {
				continue
			}
			gain := 0
			for _, h := range hits[i] {
				if !covered[[2]int{h.neuron, h.bucket}] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		selected = append(selected, best)
		for _, h := range hits[best] {
			covered[[2]int{h.neuron, h.bucket}] = true
		}
		if bestGain == 0 && len(selected) >= 1 {
			// Remaining candidates add nothing; stop early unless the
			// caller insists on exactly k (we do not pad).
			break
		}
	}
	return selected, nil
}

// Uncertainty returns the runtime uncertainty of one input: the
// fraction of TK neurons whose activation falls outside the training
// envelope [mean - 3 std, mean + 3 std]. 0 means every TK neuron
// behaves as it did on training data.
func (a *Analysis) Uncertainty(input []float64) (float64, error) {
	_, tr, err := a.net.PredictTrace(input)
	if err != nil {
		return 0, err
	}
	hidden := tr.Hidden()
	outside := 0
	for _, idx := range a.tk {
		s := a.stats[idx]
		lo := s.Mean - 3*s.Std
		hi := s.Mean + 3*s.Std
		v := hidden[s.Index]
		if v < lo || v > hi {
			outside++
		}
	}
	return float64(outside) / float64(len(a.tk)), nil
}

// WindowUncertainty averages Uncertainty over a window of inputs — the
// value fused with SafeML's score in the §V-B pipeline.
func (a *Analysis) WindowUncertainty(inputs [][]float64) (float64, error) {
	if len(inputs) == 0 {
		return 0, errors.New("deepknowledge: empty window")
	}
	var sum float64
	for _, x := range inputs {
		u, err := a.Uncertainty(x)
		if err != nil {
			return 0, err
		}
		sum += u
	}
	return sum / float64(len(inputs)), nil
}
