package deepknowledge

import (
	"math/rand"
	"testing"

	"sesame/internal/neural"
)

// trainedNet returns a small trained classifier plus in-distribution
// and shifted sample generators.
func trainedNet(t *testing.T) (*neural.Network, [][]float64, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	net, err := neural.New(4, rng,
		neural.LayerSpec{Units: 12, Activation: neural.ReLU},
		neural.LayerSpec{Units: 6, Activation: neural.ReLU},
		neural.LayerSpec{Units: 1, Activation: neural.Sigmoid})
	if err != nil {
		t.Fatal(err)
	}
	var data []neural.Sample
	sample := func(shift float64) []float64 {
		x := make([]float64, 4)
		for i := range x {
			x[i] = rng.NormFloat64() + shift
		}
		return x
	}
	for i := 0; i < 200; i++ {
		x := sample(0)
		y := 0.0
		if x[0]+x[1] > 0 {
			y = 1
		}
		data = append(data, neural.Sample{X: x, Y: []float64{y}})
	}
	if _, err := net.Train(data, 200, 0.05, rng); err != nil {
		t.Fatal(err)
	}
	var train, shifted [][]float64
	for i := 0; i < 150; i++ {
		train = append(train, sample(0))
		shifted = append(shifted, sample(3))
	}
	return net, train, shifted
}

func TestAnalyzeValidation(t *testing.T) {
	net, train, shifted := trainedNet(t)
	if _, err := Analyze(nil, train, shifted, 5, 4); err == nil {
		t.Error("nil net must fail")
	}
	if _, err := Analyze(net, nil, shifted, 5, 4); err == nil {
		t.Error("empty train must fail")
	}
	if _, err := Analyze(net, train, nil, 5, 4); err == nil {
		t.Error("empty shifted must fail")
	}
	if _, err := Analyze(net, train, shifted, 0, 4); err == nil {
		t.Error("topK 0 must fail")
	}
	if _, err := Analyze(net, train, shifted, 5, 1); err == nil {
		t.Error("1 bucket must fail")
	}
}

func TestTKNeuronSelection(t *testing.T) {
	net, train, shifted := trainedNet(t)
	a, err := Analyze(net, train, shifted, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	tk := a.TKNeurons()
	if len(tk) != 6 {
		t.Fatalf("TK count = %d", len(tk))
	}
	for i := 1; i < len(tk); i++ {
		if tk[i].Score > tk[i-1].Score {
			t.Fatal("TK neurons not ordered by score")
		}
	}
	// topK larger than the hidden width clamps (hidden width = 18).
	a2, err := Analyze(net, train, shifted, 999, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a2.TKNeurons()) != 18 {
		t.Fatalf("clamped TK count = %d, want 18", len(a2.TKNeurons()))
	}
}

func TestCoverageScoreGrowsWithDiversity(t *testing.T) {
	net, train, shifted := trainedNet(t)
	a, err := Analyze(net, train, shifted, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	small, err := a.CoverageScore(train[:3])
	if err != nil {
		t.Fatal(err)
	}
	full, err := a.CoverageScore(train)
	if err != nil {
		t.Fatal(err)
	}
	if full <= small {
		t.Fatalf("coverage must grow with suite size: %v -> %v", small, full)
	}
	if full <= 0 || full > 1 {
		t.Fatalf("coverage out of range: %v", full)
	}
	if _, err := a.CoverageScore(nil); err == nil {
		t.Fatal("empty suite must fail")
	}
}

func TestTrainingDataCoverageHigh(t *testing.T) {
	net, train, shifted := trainedNet(t)
	a, _ := Analyze(net, train, shifted, 8, 4)
	cov, err := a.CoverageScore(train)
	if err != nil {
		t.Fatal(err)
	}
	if cov < 0.5 {
		t.Fatalf("training set covers only %v of its own buckets", cov)
	}
}

func TestUncertaintyLowInDistribution(t *testing.T) {
	net, train, shifted := trainedNet(t)
	a, _ := Analyze(net, train, shifted, 8, 4)
	u, err := a.WindowUncertainty(train[:40])
	if err != nil {
		t.Fatal(err)
	}
	if u > 0.2 {
		t.Fatalf("in-distribution uncertainty = %v, want small", u)
	}
}

func TestUncertaintyHighOutOfDistribution(t *testing.T) {
	net, train, shifted := trainedNet(t)
	a, _ := Analyze(net, train, shifted, 8, 4)
	uIn, _ := a.WindowUncertainty(train[:40])
	uOut, err := a.WindowUncertainty(shifted[:40])
	if err != nil {
		t.Fatal(err)
	}
	if uOut <= uIn {
		t.Fatalf("OOD uncertainty (%v) must exceed in-dist (%v)", uOut, uIn)
	}
	if uOut < 0.3 {
		t.Fatalf("OOD uncertainty = %v, want substantial", uOut)
	}
}

func TestUncertaintySingleInput(t *testing.T) {
	net, train, shifted := trainedNet(t)
	a, _ := Analyze(net, train, shifted, 8, 4)
	u, err := a.Uncertainty(train[0])
	if err != nil {
		t.Fatal(err)
	}
	if u < 0 || u > 1 {
		t.Fatalf("uncertainty out of range: %v", u)
	}
	if _, err := a.Uncertainty([]float64{1}); err == nil {
		t.Fatal("wrong width must fail")
	}
	if _, err := a.WindowUncertainty(nil); err == nil {
		t.Fatal("empty window must fail")
	}
}

func BenchmarkUncertainty(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net, _ := neural.New(4, rng,
		neural.LayerSpec{Units: 12, Activation: neural.ReLU},
		neural.LayerSpec{Units: 1, Activation: neural.Sigmoid})
	var train, shifted [][]float64
	for i := 0; i < 100; i++ {
		x := make([]float64, 4)
		y := make([]float64, 4)
		for j := range x {
			x[j] = rng.NormFloat64()
			y[j] = rng.NormFloat64() + 2
		}
		train = append(train, x)
		shifted = append(shifted, y)
	}
	a, err := Analyze(net, train, shifted, 6, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Uncertainty(train[i%len(train)]); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSelectForCoverage(t *testing.T) {
	net, train, shifted := trainedNet(t)
	a, err := Analyze(net, train, shifted, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	pool := append(append([][]float64{}, train[:30]...), shifted[:30]...)
	sel, err := a.SelectForCoverage(pool, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 || len(sel) > 10 {
		t.Fatalf("selected %d", len(sel))
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= len(pool) || seen[i] {
			t.Fatalf("bad selection %v", sel)
		}
		seen[i] = true
	}
	// The greedy selection covers at least as much as the same number
	// of leading pool entries.
	var selInputs, naive [][]float64
	for _, i := range sel {
		selInputs = append(selInputs, pool[i])
	}
	naive = pool[:len(sel)]
	cSel, err := a.CoverageScore(selInputs)
	if err != nil {
		t.Fatal(err)
	}
	cNaive, err := a.CoverageScore(naive)
	if err != nil {
		t.Fatal(err)
	}
	if cSel < cNaive {
		t.Fatalf("greedy coverage %v below naive %v", cSel, cNaive)
	}
}

func TestSelectForCoverageValidation(t *testing.T) {
	net, train, shifted := trainedNet(t)
	a, _ := Analyze(net, train, shifted, 4, 4)
	if _, err := a.SelectForCoverage(nil, 3); err == nil {
		t.Error("empty pool must fail")
	}
	if _, err := a.SelectForCoverage(train[:5], 0); err == nil {
		t.Error("k=0 must fail")
	}
	// k larger than the pool clamps.
	sel, err := a.SelectForCoverage(train[:3], 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) > 3 {
		t.Fatalf("selected %d from pool of 3", len(sel))
	}
}
