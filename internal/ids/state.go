package ids

import (
	"sesame/internal/geo"
	"sesame/internal/uavsim"
)

// State is the IDS's serializable detection state for the flight
// recorder (internal/flightrec). The bus subscription, broker wiring
// and observability handles are rebuilt by New/Instrument; pending is
// transient within one inspect call and is always empty between ticks
// (checkpoints are only taken on a quiescent platform).
type State struct {
	Alerts   []Alert                  `json:"alerts"`
	Arrival  map[string][]float64     `json:"arrival"`
	LastSeen map[string]float64       `json:"last_seen"`
	LastGPS  map[string]uavsim.GPSFix `json:"last_gps"`
	LastOdo  map[string]geo.LatLng    `json:"last_odo"`
	HasOdo   map[string]bool          `json:"has_odo"`
	LastHit  map[string]float64       `json:"last_hit"`
}

// State exports the detection state.
func (d *IDS) State() State {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := State{
		Alerts:   append([]Alert(nil), d.alerts...),
		Arrival:  make(map[string][]float64, len(d.arrival)),
		LastSeen: make(map[string]float64, len(d.lastSeen)),
		LastGPS:  make(map[string]uavsim.GPSFix, len(d.lastGPS)),
		LastOdo:  make(map[string]geo.LatLng, len(d.lastOdo)),
		HasOdo:   make(map[string]bool, len(d.hasOdo)),
		LastHit:  make(map[string]float64, len(d.lastHit)),
	}
	for k, v := range d.arrival {
		s.Arrival[k] = append([]float64(nil), v...)
	}
	for k, v := range d.lastSeen {
		s.LastSeen[k] = v
	}
	for k, v := range d.lastGPS {
		s.LastGPS[k] = v
	}
	for k, v := range d.lastOdo {
		s.LastOdo[k] = v
	}
	for k, v := range d.hasOdo {
		s.HasOdo[k] = v
	}
	for k, v := range d.lastHit {
		s.LastHit[k] = v
	}
	return s
}

// Restore overwrites the detection state.
func (d *IDS) Restore(s State) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.alerts = append(d.alerts[:0:0], s.Alerts...)
	d.pending = nil
	d.arrival = make(map[string][]float64, len(s.Arrival))
	for k, v := range s.Arrival {
		d.arrival[k] = append([]float64(nil), v...)
	}
	d.lastSeen = make(map[string]float64, len(s.LastSeen))
	for k, v := range s.LastSeen {
		d.lastSeen[k] = v
	}
	d.lastGPS = make(map[string]uavsim.GPSFix, len(s.LastGPS))
	for k, v := range s.LastGPS {
		d.lastGPS[k] = v
	}
	d.lastOdo = make(map[string]geo.LatLng, len(s.LastOdo))
	for k, v := range s.LastOdo {
		d.lastOdo[k] = v
	}
	d.hasOdo = make(map[string]bool, len(s.HasOdo))
	for k, v := range s.HasOdo {
		d.hasOdo[k] = v
	}
	d.lastHit = make(map[string]float64, len(s.LastHit))
	for k, v := range s.LastHit {
		d.lastHit[k] = v
	}
}
