// Package ids implements the intrusion detection system of the
// Security EDDI architecture (paper §III-B). Where the paper's IDS
// inspects ROS network traffic, this one taps the rosbus middleware —
// the same vantage point — and applies detection rules to the message
// stream:
//
//   - unauthorized-node: a publisher name outside the topic's allow-list;
//   - message-injection: per-topic message rate above the declared
//     telemetry rate (a second publisher racing the legitimate one);
//   - gps-anomaly: sustained divergence between the GPS position feed
//     and the IMU/odometry track reported on the status topic — the
//     signature of GPS/position spoofing;
//   - teleport: consecutive GPS fixes implying a physically impossible
//     speed.
//
// Alerts are JSON-encoded and published to the mqttlite broker under
// alerts/ids/<uav>, where the Security EDDI scripts subscribe.
package ids

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"sesame/internal/geo"
	"sesame/internal/mqttlite"
	"sesame/internal/obsv"
	"sesame/internal/rosbus"
	"sesame/internal/uavsim"
)

// Alert types.
const (
	AlertUnauthorizedNode = "unauthorized-node"
	AlertMessageInjection = "message-injection"
	AlertGPSAnomaly       = "gps-anomaly"
	AlertTeleport         = "teleport"
	AlertLinkSilence      = "link-silence"
)

// Alert is one IDS finding.
type Alert struct {
	Type   string  `json:"type"`
	UAV    string  `json:"uav"`
	Topic  string  `json:"topic"`
	Detail string  `json:"detail"`
	Stamp  float64 `json:"stamp"`
}

// AlertTopic returns the broker topic alerts for uav are published on.
func AlertTopic(uav string) string { return "alerts/ids/" + uav }

// Config tunes the rule engine.
type Config struct {
	// AllowedPublishers maps a bus topic to the node names allowed to
	// publish on it. Topics absent from the map are unchecked.
	AllowedPublishers map[string][]string
	// MaxRateHz is the per-topic message budget; rates above it raise
	// message-injection. Zero disables the rule.
	MaxRateHz float64
	// RateWindowS is the sliding window for rate estimation.
	RateWindowS float64
	// GPSDivergenceM raises gps-anomaly when the GPS track drifts this
	// far from the odometry track.
	GPSDivergenceM float64
	// MaxSpeedMS raises teleport when consecutive fixes imply a faster
	// ground speed.
	MaxSpeedMS float64
	// Cooldown suppresses duplicate alerts of the same (type, uav)
	// within this many seconds.
	CooldownS float64
	// SilenceTimeoutS raises link-silence when a previously active
	// topic stops carrying traffic for this long (jamming signature).
	// Zero disables the rule. Silence is checked lazily whenever any
	// other message arrives, mirroring a traffic-driven network IDS.
	SilenceTimeoutS float64
}

// DefaultConfig matches the experiment scenarios: 1 Hz telemetry,
// 10 m divergence bound, 30 m/s speed bound.
func DefaultConfig() Config {
	return Config{
		MaxRateHz:       1.5,
		RateWindowS:     8,
		GPSDivergenceM:  10,
		MaxSpeedMS:      30,
		CooldownS:       5,
		SilenceTimeoutS: 12,
	}
}

// IDS is the live detector. Create with New; detach with Close.
type IDS struct {
	cfg    Config
	broker *mqttlite.Broker
	cancel func()

	mu        sync.Mutex
	alerts    []Alert
	pending   []Alert
	arrival   map[string][]float64 // topic -> recent stamps
	lastSeen  map[string]float64   // topic -> newest stamp (silence rule)
	lastSweep float64              // newest stamp the silence sweep ran at
	lastGPS   map[string]uavsim.GPSFix
	lastOdo   map[string]geo.LatLng
	hasOdo    map[string]bool
	lastHit   map[string]float64 // type+uav -> stamp of last alert

	// Observability mirrors (nil when uninstrumented; all nil-safe).
	// The per-rule evaluation counters are resolved once at Instrument:
	// inspect runs on every bus message, so the hot path must not pay a
	// labeled-series lookup per rule.
	mEvalAllow    *obsv.Counter
	mEvalRate     *obsv.Counter
	mEvalSilence  *obsv.Counter
	mEvalTeleport *obsv.Counter
	mEvalGPS      *obsv.Counter
	mAlerts       *obsv.CounterVec
	mSuppressed   *obsv.Counter
}

// New attaches the IDS to the bus and starts publishing alerts to the
// broker.
func New(bus *rosbus.Bus, broker *mqttlite.Broker, cfg Config) (*IDS, error) {
	if bus == nil || broker == nil {
		return nil, errors.New("ids: nil bus or broker")
	}
	if cfg.RateWindowS <= 0 {
		cfg.RateWindowS = 8
	}
	d := &IDS{
		cfg:      cfg,
		broker:   broker,
		arrival:  make(map[string][]float64),
		lastSeen: make(map[string]float64),
		lastGPS:  make(map[string]uavsim.GPSFix),
		lastOdo:  make(map[string]geo.LatLng),
		hasOdo:   make(map[string]bool),
		lastHit:  make(map[string]float64),
	}
	cancel, err := bus.Tap(d.inspect)
	if err != nil {
		return nil, err
	}
	d.cancel = cancel
	return d, nil
}

// Instrument mirrors rule evaluations and alert emissions into reg. A
// nil registry leaves the IDS uninstrumented (nil handles are no-ops).
func (d *IDS) Instrument(reg *obsv.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	evals := reg.CounterVec("sesame_ids_rule_evaluations_total",
		"Detection-rule evaluations, by rule.", "rule")
	d.mEvalAllow = evals.With("allow-list")
	d.mEvalRate = evals.With("rate")
	d.mEvalSilence = evals.With("silence")
	d.mEvalTeleport = evals.With("teleport")
	d.mEvalGPS = evals.With("gps-divergence")
	d.mAlerts = reg.CounterVec("sesame_ids_alerts_total",
		"Alerts raised (post-cooldown), by type.", "type")
	d.mSuppressed = reg.Counter("sesame_ids_alerts_suppressed_total",
		"Alerts suppressed by the per-(type,uav) cooldown.")
}

// Close detaches the IDS from the bus.
func (d *IDS) Close() {
	if d.cancel != nil {
		d.cancel()
		d.cancel = nil
	}
}

// Alerts returns a copy of all alerts raised so far.
func (d *IDS) Alerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Alert(nil), d.alerts...)
}

// uavOf extracts the UAV id from a "/uav/<id>/<kind>" topic. It runs
// on every bus message, so it parses in place rather than splitting
// (the Split allocation dominated large-fleet tick profiles).
func uavOf(topic string) string {
	i := strings.IndexByte(topic, '/')
	if i < 0 {
		return ""
	}
	rest := topic[i+1:]
	if !strings.HasPrefix(rest, "uav/") {
		return ""
	}
	id := rest[len("uav/"):]
	if j := strings.IndexByte(id, '/'); j >= 0 {
		id = id[:j]
	}
	return id
}

// inspect is the bus tap. Alerts are accumulated under the lock and
// published to the broker after it is released, so broker handlers may
// freely publish back onto the bus without deadlocking the tap.
func (d *IDS) inspect(m rosbus.Message) {
	uav := uavOf(m.Topic)
	d.mu.Lock()
	d.pending = d.pending[:0]

	// Rule 1: publisher allow-list.
	if allowed, checked := d.cfg.AllowedPublishers[m.Topic]; checked {
		d.mEvalAllow.Inc()
		ok := false
		for _, a := range allowed {
			if a == m.Publisher {
				ok = true
				break
			}
		}
		if !ok {
			d.raise(Alert{
				Type:   AlertUnauthorizedNode,
				UAV:    uav,
				Topic:  m.Topic,
				Detail: fmt.Sprintf("publisher %q not in allow-list", m.Publisher),
				Stamp:  m.Stamp,
			})
		}
	}

	// Rule 2: rate anomaly.
	if d.cfg.MaxRateHz > 0 {
		d.mEvalRate.Inc()
		window := d.arrival[m.Topic]
		cutoff := m.Stamp - d.cfg.RateWindowS
		keep := window[:0]
		for _, s := range window {
			if s >= cutoff {
				keep = append(keep, s)
			}
		}
		keep = append(keep, m.Stamp)
		d.arrival[m.Topic] = keep
		rate := float64(len(keep)) / d.cfg.RateWindowS
		if rate > d.cfg.MaxRateHz && len(keep) >= 4 {
			d.raise(Alert{
				Type:   AlertMessageInjection,
				UAV:    uav,
				Topic:  m.Topic,
				Detail: fmt.Sprintf("rate %.2f Hz exceeds %.2f Hz budget", rate, d.cfg.MaxRateHz),
				Stamp:  m.Stamp,
			})
		}
	}

	// Rule: link silence. Lazily scan tracked topics whenever traffic
	// arrives; a topic quiet past the timeout looks like jamming. All
	// messages of one simulation step carry the same stamp, and within a
	// stamp no tracked entry can newly cross the timeout, so one sweep
	// per distinct stamp raises exactly the alerts a per-message sweep
	// would — without the O(topics) scan on every message, which made
	// each simulation step quadratic in fleet size.
	if d.cfg.SilenceTimeoutS > 0 {
		if m.Stamp > d.lastSweep {
			d.lastSweep = m.Stamp
			d.mEvalSilence.Inc()
			// Collect expired topics first and raise in sorted order: a
			// fleet-wide outage silences several topics at the same stamp,
			// and alert order must not depend on map iteration — the
			// downstream security events are digested.
			var silent []string
			for topic, last := range d.lastSeen {
				if topic == m.Topic {
					continue
				}
				if m.Stamp-last > d.cfg.SilenceTimeoutS {
					silent = append(silent, topic)
				}
			}
			sort.Strings(silent)
			for _, topic := range silent {
				d.raise(Alert{
					Type:   AlertLinkSilence,
					UAV:    uavOf(topic),
					Topic:  topic,
					Detail: fmt.Sprintf("no traffic for %.0f s (timeout %.0f s)", m.Stamp-d.lastSeen[topic], d.cfg.SilenceTimeoutS),
					Stamp:  m.Stamp,
				})
				// Re-arm only after fresh traffic.
				delete(d.lastSeen, topic)
			}
		}
		if m.Stamp > d.lastSeen[m.Topic] {
			d.lastSeen[m.Topic] = m.Stamp
		}
	}

	// Rules 3 & 4 consume typed telemetry.
	switch p := m.Payload.(type) {
	case uavsim.GPSFix:
		d.inspectGPS(m, p)
	case uavsim.StatusReport:
		d.lastOdo[p.UAV] = p.Position
		d.hasOdo[p.UAV] = true
	}

	toPublish := append([]Alert(nil), d.pending...)
	d.mu.Unlock()
	for _, a := range toPublish {
		payload, err := json.Marshal(a)
		if err != nil {
			continue
		}
		topic := AlertTopic(a.UAV)
		if a.UAV == "" {
			topic = "alerts/ids/unknown"
		}
		_ = d.broker.Publish(topic, payload, false)
	}
}

func (d *IDS) inspectGPS(m rosbus.Message, fix uavsim.GPSFix) {
	if fix.Quality == uavsim.GPSLost {
		return
	}
	// Teleport: implied speed between consecutive fixes.
	if prev, ok := d.lastGPS[fix.UAV]; ok && fix.Stamp > prev.Stamp {
		d.mEvalTeleport.Inc()
		dt := fix.Stamp - prev.Stamp
		speed := geo.Haversine(prev.Position, fix.Position) / dt
		if d.cfg.MaxSpeedMS > 0 && speed > d.cfg.MaxSpeedMS {
			d.raise(Alert{
				Type:   AlertTeleport,
				UAV:    fix.UAV,
				Topic:  m.Topic,
				Detail: fmt.Sprintf("implied speed %.1f m/s exceeds %.1f m/s", speed, d.cfg.MaxSpeedMS),
				Stamp:  fix.Stamp,
			})
		}
	}
	d.lastGPS[fix.UAV] = fix

	// GPS/odometry divergence.
	if d.cfg.GPSDivergenceM > 0 && d.hasOdo[fix.UAV] {
		d.mEvalGPS.Inc()
		div := geo.Haversine(fix.Position, d.lastOdo[fix.UAV])
		if div > d.cfg.GPSDivergenceM {
			d.raise(Alert{
				Type:   AlertGPSAnomaly,
				UAV:    fix.UAV,
				Topic:  m.Topic,
				Detail: fmt.Sprintf("GPS diverges %.1f m from odometry (bound %.1f m)", div, d.cfg.GPSDivergenceM),
				Stamp:  fix.Stamp,
			})
		}
	}
}

// raise records an alert and queues it for publication, respecting the
// cooldown. Callers hold d.mu.
func (d *IDS) raise(a Alert) {
	key := a.Type + "|" + a.UAV
	if last, ok := d.lastHit[key]; ok && a.Stamp-last < d.cfg.CooldownS {
		d.mSuppressed.Inc()
		return
	}
	d.lastHit[key] = a.Stamp
	d.mAlerts.With(a.Type).Inc()
	d.alerts = append(d.alerts, a)
	d.pending = append(d.pending, a)
}
