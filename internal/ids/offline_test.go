package ids

// Offline analysis: a recorded mission replayed through a fresh IDS
// must reproduce the live detections — the rosbag-debrief workflow.

import (
	"testing"

	"sesame/internal/geo"
	"sesame/internal/mqttlite"
	"sesame/internal/rosbus"
	"sesame/internal/uavsim"
)

func TestOfflineReplayReproducesDetections(t *testing.T) {
	// Live mission with a recorder and a live IDS attached.
	w := uavsim.NewWorld(origin, 77)
	rec, err := rosbus.NewRecorder(w.Bus)
	if err != nil {
		t.Fatal(err)
	}
	liveBroker := mqttlite.NewBroker()
	live, err := New(w.Bus, liveBroker, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	u, _ := w.AddUAV(uavsim.UAVConfig{ID: "u1", Home: origin})
	if err := u.TakeOff(25); err != nil {
		t.Fatal(err)
	}
	_ = w.Run(10, 1)
	_ = u.FlyMission([]geo.LatLng{geo.Destination(origin, 90, 500)}, 25)
	_ = w.ScheduleFault(uavsim.GPSSpoofFault(15, "u1", 180, 3))
	_ = w.Run(60, 1)
	rec.Stop()

	liveAlerts := live.Alerts()
	if len(liveAlerts) == 0 {
		t.Fatal("live IDS saw nothing")
	}

	// Debrief: replay the recording into a fresh bus with a fresh IDS.
	replayBus := rosbus.NewBus()
	offlineBroker := mqttlite.NewBroker()
	offline, err := New(replayBus, offlineBroker, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer offline.Close()
	if _, err := rosbus.Replay(replayBus, rec.Messages(), nil); err != nil {
		t.Fatal(err)
	}
	offlineAlerts := offline.Alerts()
	if len(offlineAlerts) != len(liveAlerts) {
		t.Fatalf("offline found %d alerts, live found %d", len(offlineAlerts), len(liveAlerts))
	}
	for i := range liveAlerts {
		if offlineAlerts[i].Type != liveAlerts[i].Type || offlineAlerts[i].Stamp != liveAlerts[i].Stamp {
			t.Fatalf("alert %d differs: live %+v vs offline %+v", i, liveAlerts[i], offlineAlerts[i])
		}
	}
}
