package ids

import (
	"encoding/json"
	"testing"

	"sesame/internal/geo"
	"sesame/internal/mqttlite"
	"sesame/internal/rosbus"
	"sesame/internal/uavsim"
)

var origin = geo.LatLng{Lat: 35.1856, Lng: 33.3823}

func setup(t *testing.T, cfg Config) (*rosbus.Bus, *mqttlite.Broker, *IDS) {
	t.Helper()
	bus := rosbus.NewBus()
	broker := mqttlite.NewBroker()
	d, err := New(bus, broker, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return bus, broker, d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, mqttlite.NewBroker(), DefaultConfig()); err == nil {
		t.Error("nil bus must fail")
	}
	if _, err := New(rosbus.NewBus(), nil, DefaultConfig()); err == nil {
		t.Error("nil broker must fail")
	}
}

func TestUnauthorizedPublisher(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AllowedPublishers = map[string][]string{"/uav/u1/gps": {"u1"}}
	bus, broker, d := setup(t, cfg)

	var received []Alert
	_, _ = broker.Subscribe("alerts/ids/+", func(m mqttlite.Message) {
		var a Alert
		if err := json.Unmarshal(m.Payload, &a); err != nil {
			t.Errorf("bad alert payload: %v", err)
			return
		}
		received = append(received, a)
	})

	legit, _ := bus.Advertise("/uav/u1/gps", "u1")
	_ = legit.Publish(1, uavsim.GPSFix{UAV: "u1", Position: origin, Quality: uavsim.GPSRTK, Stamp: 1})
	if len(d.Alerts()) != 0 {
		t.Fatalf("legit publisher alerted: %v", d.Alerts())
	}

	_ = bus.Inject(rosbus.Message{Topic: "/uav/u1/gps", Publisher: "evil", Stamp: 2,
		Payload: uavsim.GPSFix{UAV: "u1", Position: origin, Quality: uavsim.GPSRTK, Stamp: 2}})
	alerts := d.Alerts()
	if len(alerts) != 1 || alerts[0].Type != AlertUnauthorizedNode {
		t.Fatalf("alerts = %v", alerts)
	}
	if alerts[0].UAV != "u1" {
		t.Fatalf("alert uav = %q", alerts[0].UAV)
	}
	if len(received) != 1 || received[0].Type != AlertUnauthorizedNode {
		t.Fatalf("broker delivery = %v", received)
	}
}

func TestRateAnomaly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRateHz = 1.5
	cfg.RateWindowS = 4
	bus, _, d := setup(t, cfg)
	pub, _ := bus.Advertise("/uav/u1/cmd", "gcs")
	// 1 Hz is fine.
	for ts := 1.0; ts <= 6; ts++ {
		_ = pub.Publish(ts, "cmd")
	}
	if len(d.Alerts()) != 0 {
		t.Fatalf("1 Hz flagged: %v", d.Alerts())
	}
	// A second publisher doubles the rate (the injection signature).
	evil, _ := bus.Advertise("/uav/u1/cmd", "gcs") // same name, attacker
	for ts := 6.2; ts <= 10; ts += 0.5 {
		_ = evil.Publish(ts, "spoof")
		_ = pub.Publish(ts+0.1, "cmd")
	}
	found := false
	for _, a := range d.Alerts() {
		if a.Type == AlertMessageInjection {
			found = true
		}
	}
	if !found {
		t.Fatalf("injection not detected: %v", d.Alerts())
	}
}

func TestGPSDivergence(t *testing.T) {
	bus, _, d := setup(t, DefaultConfig())
	gps, _ := bus.Advertise("/uav/u1/gps", "u1")
	status, _ := bus.Advertise("/uav/u1/status", "u1")

	// Nominal: GPS tracks odometry.
	for ts := 1.0; ts <= 5; ts++ {
		p := geo.Destination(origin, 90, ts*5)
		_ = status.Publish(ts, uavsim.StatusReport{UAV: "u1", Position: p, Stamp: ts})
		_ = gps.Publish(ts, uavsim.GPSFix{UAV: "u1", Position: p, Quality: uavsim.GPSRTK, Stamp: ts})
	}
	if len(d.Alerts()) != 0 {
		t.Fatalf("nominal flight alerted: %v", d.Alerts())
	}

	// Spoof: GPS drifts away from odometry beyond 10 m.
	for ts := 6.0; ts <= 12; ts++ {
		truth := geo.Destination(origin, 90, ts*5)
		spoofed := geo.Destination(truth, 180, (ts-5)*4)
		_ = status.Publish(ts, uavsim.StatusReport{UAV: "u1", Position: truth, Stamp: ts})
		_ = gps.Publish(ts, uavsim.GPSFix{UAV: "u1", Position: spoofed, Quality: uavsim.GPSRTK, Stamp: ts})
	}
	var gpsAlerts []Alert
	for _, a := range d.Alerts() {
		if a.Type == AlertGPSAnomaly {
			gpsAlerts = append(gpsAlerts, a)
		}
	}
	if len(gpsAlerts) == 0 {
		t.Fatalf("divergence not detected: %v", d.Alerts())
	}
	// Detected promptly: offset passes 10 m between t=7 (8 m) and t=8 (12 m).
	if gpsAlerts[0].Stamp > 9 {
		t.Fatalf("detection too slow: %v", gpsAlerts[0])
	}
}

func TestTeleport(t *testing.T) {
	bus, _, d := setup(t, DefaultConfig())
	gps, _ := bus.Advertise("/uav/u1/gps", "u1")
	_ = gps.Publish(1, uavsim.GPSFix{UAV: "u1", Position: origin, Quality: uavsim.GPSRTK, Stamp: 1})
	// 500 m in 1 s.
	_ = gps.Publish(2, uavsim.GPSFix{UAV: "u1", Position: geo.Destination(origin, 0, 500), Quality: uavsim.GPSRTK, Stamp: 2})
	found := false
	for _, a := range d.Alerts() {
		if a.Type == AlertTeleport {
			found = true
		}
	}
	if !found {
		t.Fatalf("teleport not detected: %v", d.Alerts())
	}
}

func TestLostFixIgnored(t *testing.T) {
	bus, _, d := setup(t, DefaultConfig())
	gps, _ := bus.Advertise("/uav/u1/gps", "u1")
	status, _ := bus.Advertise("/uav/u1/status", "u1")
	_ = status.Publish(1, uavsim.StatusReport{UAV: "u1", Position: origin, Stamp: 1})
	// Lost fixes carry a zero position; they must not trip divergence.
	_ = gps.Publish(1, uavsim.GPSFix{UAV: "u1", Quality: uavsim.GPSLost, Stamp: 1})
	if len(d.Alerts()) != 0 {
		t.Fatalf("lost fix alerted: %v", d.Alerts())
	}
}

func TestCooldownSuppressesDuplicates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CooldownS = 100
	cfg.AllowedPublishers = map[string][]string{"/uav/u1/gps": {"u1"}}
	bus, _, d := setup(t, cfg)
	for ts := 1.0; ts <= 10; ts++ {
		_ = bus.Inject(rosbus.Message{Topic: "/uav/u1/gps", Publisher: "evil", Stamp: ts, Payload: "x"})
	}
	if n := len(d.Alerts()); n != 1 {
		t.Fatalf("cooldown failed: %d alerts", n)
	}
}

func TestWorldIntegrationSpoofDetected(t *testing.T) {
	// Full pipeline: uavsim world telemetry -> IDS -> alert, with a
	// scheduled spoof fault.
	w := uavsim.NewWorld(origin, 5)
	broker := mqttlite.NewBroker()
	d, err := New(w.Bus, broker, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	u, err := w.AddUAV(uavsim.UAVConfig{ID: "u1", Home: origin})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.TakeOff(25); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(10, 1); err != nil {
		t.Fatal(err)
	}
	if err := u.FlyMission([]geo.LatLng{geo.Destination(origin, 90, 400)}, 25); err != nil {
		t.Fatal(err)
	}
	if err := w.ScheduleFault(uavsim.GPSSpoofFault(15, "u1", 180, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(40, 1); err != nil {
		t.Fatal(err)
	}
	var gpsAlerts []Alert
	for _, a := range d.Alerts() {
		if a.Type == AlertGPSAnomaly && a.UAV == "u1" {
			gpsAlerts = append(gpsAlerts, a)
		}
	}
	if len(gpsAlerts) == 0 {
		t.Fatalf("spoof not detected; alerts: %v", d.Alerts())
	}
	// Spoof starts at t=15 drifting 3 m/s; 10 m bound crossed ~t=19.
	if gpsAlerts[0].Stamp < 15 || gpsAlerts[0].Stamp > 25 {
		t.Fatalf("detection stamp = %v, want shortly after 15", gpsAlerts[0].Stamp)
	}
}

func TestClose(t *testing.T) {
	bus, _, d := setup(t, Config{MaxSpeedMS: 30, GPSDivergenceM: 10})
	d.Close()
	gps, _ := bus.Advertise("/uav/u1/gps", "u1")
	_ = gps.Publish(1, uavsim.GPSFix{UAV: "u1", Position: origin, Quality: uavsim.GPSRTK, Stamp: 1})
	_ = gps.Publish(2, uavsim.GPSFix{UAV: "u1", Position: geo.Destination(origin, 0, 900), Quality: uavsim.GPSRTK, Stamp: 2})
	if len(d.Alerts()) != 0 {
		t.Fatal("closed IDS still inspecting")
	}
	d.Close() // double close is harmless
}

func BenchmarkInspectGPS(b *testing.B) {
	bus := rosbus.NewBus()
	broker := mqttlite.NewBroker()
	d, _ := New(bus, broker, DefaultConfig())
	defer d.Close()
	gps, _ := bus.Advertise("/uav/u1/gps", "u1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gps.Publish(float64(i), uavsim.GPSFix{UAV: "u1", Position: origin, Quality: uavsim.GPSRTK, Stamp: float64(i)})
	}
}

func TestLinkSilence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SilenceTimeoutS = 10
	bus, _, d := setup(t, cfg)
	cmd, _ := bus.Advertise("/uav/u1/cmd", "gcs")
	tele, _ := bus.Advertise("/uav/u2/status", "u2")
	// Both topics active.
	for ts := 1.0; ts <= 5; ts++ {
		_ = cmd.Publish(ts, "c")
		_ = tele.Publish(ts, "s")
	}
	// The cmd topic goes silent while telemetry keeps flowing.
	for ts := 6.0; ts <= 20; ts++ {
		_ = tele.Publish(ts, "s")
	}
	var silence []Alert
	for _, a := range d.Alerts() {
		if a.Type == AlertLinkSilence {
			silence = append(silence, a)
		}
	}
	if len(silence) == 0 {
		t.Fatalf("silence not detected: %v", d.Alerts())
	}
	if silence[0].Topic != "/uav/u1/cmd" || silence[0].UAV != "u1" {
		t.Fatalf("silence alert = %+v", silence[0])
	}
	// Timeout was 10 s after last cmd at t=5 -> detection around t=16.
	if silence[0].Stamp < 15 || silence[0].Stamp > 18 {
		t.Fatalf("silence detected at %v", silence[0].Stamp)
	}
}

func TestLinkSilenceDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SilenceTimeoutS = 0
	bus, _, d := setup(t, cfg)
	cmd, _ := bus.Advertise("/uav/u1/cmd", "gcs")
	tele, _ := bus.Advertise("/uav/u2/status", "u2")
	_ = cmd.Publish(1, "c")
	for ts := 2.0; ts <= 60; ts++ {
		_ = tele.Publish(ts, "s")
	}
	for _, a := range d.Alerts() {
		if a.Type == AlertLinkSilence {
			t.Fatalf("disabled rule fired: %+v", a)
		}
	}
}
