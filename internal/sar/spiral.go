package sar

import (
	"errors"
	"math"

	"sesame/internal/geo"
)

// SpiralPath plans a rectangular inward spiral over the area's
// bounding box with the given track spacing — the alternative coverage
// pattern often used when the target is believed near the area centre
// (the person's last known position in SAR doctrine). Waypoints trace
// the perimeter and shrink inward by spacing per lap.
func SpiralPath(area geo.Polygon, spacingM float64) ([]geo.LatLng, error) {
	if len(area) < 3 {
		return nil, errors.New("sar: area needs at least 3 vertices")
	}
	if spacingM <= 0 {
		return nil, errors.New("sar: spacing must be positive")
	}
	origin, err := area.Centroid()
	if err != nil {
		return nil, err
	}
	pr := geo.NewProjection(origin)
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range area {
		e := pr.ToENU(p)
		minX = math.Min(minX, e.East)
		maxX = math.Max(maxX, e.East)
		minY = math.Min(minY, e.North)
		maxY = math.Max(maxY, e.North)
	}
	// Inset by half a track so the footprint reaches the boundary.
	lo := geo.ENU{East: minX + spacingM/2, North: minY + spacingM/2}
	hi := geo.ENU{East: maxX - spacingM/2, North: maxY - spacingM/2}
	var path []geo.LatLng
	add := func(e geo.ENU) { path = append(path, pr.ToLatLng(e)) }
	for lo.East <= hi.East && lo.North <= hi.North {
		add(geo.ENU{East: lo.East, North: lo.North})
		add(geo.ENU{East: hi.East, North: lo.North})
		add(geo.ENU{East: hi.East, North: hi.North})
		add(geo.ENU{East: lo.East, North: hi.North})
		// Close the lap just above the starting corner, then step in.
		add(geo.ENU{East: lo.East, North: math.Min(lo.North+spacingM, hi.North)})
		lo.East += spacingM
		lo.North += spacingM
		hi.East -= spacingM
		hi.North -= spacingM
	}
	if len(path) == 0 {
		return nil, errors.New("sar: spacing larger than the area")
	}
	return path, nil
}

// ExpandingSquarePath plans the classic SAR expanding-square search:
// start at the area centre (the target's last known position) and
// spiral outward to the perimeter. It is the inward spiral reversed,
// so coverage is identical but the high-probability centre is searched
// first.
func ExpandingSquarePath(area geo.Polygon, spacingM float64) ([]geo.LatLng, error) {
	inward, err := SpiralPath(area, spacingM)
	if err != nil {
		return nil, err
	}
	out := make([]geo.LatLng, len(inward))
	for i, p := range inward {
		out[len(inward)-1-i] = p
	}
	return out, nil
}
