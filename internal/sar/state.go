package sar

import (
	"errors"
	"sort"

	"sesame/internal/geo"
)

// This file serializes the mission plan and the availability tracker
// for the flight recorder (internal/flightrec). Both types are pure
// data behind unexported fields, so their states restore exactly.

// TaskState is one UAV's serialized assignment.
type TaskState struct {
	UAV  string       `json:"uav"`
	ID   int          `json:"id"`
	Area geo.Polygon  `json:"area"`
	Path []geo.LatLng `json:"path"`
}

// MissionState is the serialized mission plan, tasks sorted by UAV id.
type MissionState struct {
	Area  geo.Polygon `json:"area"`
	Tasks []TaskState `json:"tasks"`
}

// State exports the mission plan.
func (m *Mission) State() MissionState {
	s := MissionState{Area: append(geo.Polygon(nil), m.Area...)}
	for uav, t := range m.Assignments {
		s.Tasks = append(s.Tasks, TaskState{
			UAV:  uav,
			ID:   t.ID,
			Area: append(geo.Polygon(nil), t.Area...),
			Path: append([]geo.LatLng(nil), t.Path...),
		})
	}
	sort.Slice(s.Tasks, func(i, j int) bool { return s.Tasks[i].UAV < s.Tasks[j].UAV })
	return s
}

// RestoreMission rebuilds a mission from its serialized plan.
func RestoreMission(s MissionState) *Mission {
	m := &Mission{
		Area:        append(geo.Polygon(nil), s.Area...),
		Assignments: make(map[string]*Task, len(s.Tasks)),
	}
	for _, t := range s.Tasks {
		m.Assignments[t.UAV] = &Task{
			ID:   t.ID,
			Area: append(geo.Polygon(nil), t.Area...),
			Path: append([]geo.LatLng(nil), t.Path...),
		}
	}
	return m
}

// AvailabilityState is the tracker's serialized bookkeeping.
type AvailabilityState struct {
	Start float64 `json:"start"`
	// UAVs is the tracked fleet, sorted.
	UAVs []string `json:"uavs"`
	// DownSince holds currently-down UAVs and when they went down.
	DownSince map[string]float64 `json:"down_since"`
	// DownTotal holds accumulated downtime per UAV.
	DownTotal map[string]float64 `json:"down_total"`
}

// State exports the tracker's bookkeeping.
func (tr *AvailabilityTracker) State() AvailabilityState {
	s := AvailabilityState{
		Start:     tr.start,
		DownSince: make(map[string]float64, len(tr.downSince)),
		DownTotal: make(map[string]float64, len(tr.downTotal)),
	}
	for id := range tr.uavs {
		s.UAVs = append(s.UAVs, id)
	}
	sort.Strings(s.UAVs)
	for k, v := range tr.downSince {
		s.DownSince[k] = v
	}
	for k, v := range tr.downTotal {
		s.DownTotal[k] = v
	}
	return s
}

// RestoreAvailabilityTracker rebuilds a tracker from its serialized
// bookkeeping.
func RestoreAvailabilityTracker(s AvailabilityState) (*AvailabilityTracker, error) {
	if len(s.UAVs) == 0 {
		return nil, errors.New("sar: availability state tracks no UAVs")
	}
	tr := &AvailabilityTracker{
		start:     s.Start,
		downSince: make(map[string]float64, len(s.DownSince)),
		downTotal: make(map[string]float64, len(s.DownTotal)),
		uavs:      make(map[string]bool, len(s.UAVs)),
	}
	for _, id := range s.UAVs {
		tr.uavs[id] = true
	}
	for k, v := range s.DownSince {
		tr.downSince[k] = v
	}
	for k, v := range s.DownTotal {
		tr.downTotal[k] = v
	}
	return tr, nil
}
