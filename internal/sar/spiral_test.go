package sar

import (
	"testing"

	"sesame/internal/geo"
)

func TestSpiralValidation(t *testing.T) {
	if _, err := SpiralPath(nil, 10); err == nil {
		t.Error("nil area must fail")
	}
	if _, err := SpiralPath(squareArea(100), 0); err == nil {
		t.Error("zero spacing must fail")
	}
	if _, err := SpiralPath(squareArea(2), 1000); err == nil {
		t.Error("oversized spacing must fail")
	}
}

func TestSpiralCoversSquare(t *testing.T) {
	area := squareArea(200)
	path, err := SpiralPath(area, 20)
	if err != nil {
		t.Fatal(err)
	}
	frac, err := CoverageFraction(area, path, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.95 {
		t.Fatalf("spiral coverage = %v", frac)
	}
	// Waypoints stay inside (or on) the bounding box.
	sw, ne := area.BoundingBox()
	for _, p := range path {
		if p.Lat < sw.Lat-1e-6 || p.Lat > ne.Lat+1e-6 || p.Lng < sw.Lng-1e-6 || p.Lng > ne.Lng+1e-6 {
			t.Fatalf("waypoint %v escapes area", p)
		}
	}
}

func TestSpiralStartsAtPerimeter(t *testing.T) {
	area := squareArea(200)
	path, _ := SpiralPath(area, 25)
	centre, _ := area.Centroid()
	// The first waypoint is near a corner, the last near the centre.
	first := geo.Haversine(path[0], centre)
	last := geo.Haversine(path[len(path)-1], centre)
	if first <= last {
		t.Fatalf("spiral must move inward: first %.0f m, last %.0f m from centre", first, last)
	}
}

func TestSpiralVsBoustrophedonLength(t *testing.T) {
	// Both patterns cover the same square at the same spacing with
	// comparable path length (within 2x of each other).
	area := squareArea(300)
	sp, err := SpiralPath(area, 25)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := BoustrophedonPath(area, 25)
	if err != nil {
		t.Fatal(err)
	}
	ls, lb := geo.PathLength(sp), geo.PathLength(bo)
	if ls <= 0 || lb <= 0 {
		t.Fatal("zero path length")
	}
	if ls > 2*lb || lb > 2*ls {
		t.Fatalf("path lengths diverge: spiral %.0f m, boustrophedon %.0f m", ls, lb)
	}
}

func BenchmarkSpiralPath(b *testing.B) {
	area := squareArea(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SpiralPath(area, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExpandingSquareIsReversedSpiral(t *testing.T) {
	area := squareArea(200)
	in, err := SpiralPath(area, 25)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExpandingSquarePath(area, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != len(out) {
		t.Fatalf("lengths differ: %d vs %d", len(in), len(out))
	}
	for i := range in {
		if in[i] != out[len(out)-1-i] {
			t.Fatalf("waypoint %d not mirrored", i)
		}
	}
	// Expanding square starts near the centre.
	centre, _ := area.Centroid()
	if geo.Haversine(out[0], centre) > geo.Haversine(out[len(out)-1], centre) {
		t.Fatal("expanding square must start at the centre")
	}
	if _, err := ExpandingSquarePath(nil, 25); err == nil {
		t.Fatal("nil area must fail")
	}
}
