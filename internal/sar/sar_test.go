package sar

import (
	"math"
	"testing"

	"sesame/internal/geo"
)

var origin = geo.LatLng{Lat: 35.1856, Lng: 33.3823}

func squareArea(side float64) geo.Polygon {
	a := origin
	b := geo.Destination(a, 90, side)
	c := geo.Destination(b, 0, side)
	d := geo.Destination(a, 0, side)
	return geo.Polygon{a, b, c, d}
}

func TestBoustrophedonValidation(t *testing.T) {
	if _, err := BoustrophedonPath(nil, 10); err == nil {
		t.Error("nil area must fail")
	}
	if _, err := BoustrophedonPath(squareArea(100), 0); err == nil {
		t.Error("zero spacing must fail")
	}
	if _, err := BoustrophedonPath(squareArea(1), 1000); err == nil {
		t.Error("spacing larger than area must fail")
	}
}

func TestBoustrophedonCoversSquare(t *testing.T) {
	area := squareArea(200)
	path, err := BoustrophedonPath(area, 20)
	if err != nil {
		t.Fatal(err)
	}
	// 200 m tall with 20 m spacing -> 10 sweep lines, 2 points each.
	if len(path) != 20 {
		t.Fatalf("path has %d points, want 20", len(path))
	}
	frac, err := CoverageFraction(area, path, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.98 {
		t.Fatalf("coverage = %v, want ~1 at radius >= spacing/2", frac)
	}
	// All waypoints stay within (or on the edge of) the area bbox.
	sw, ne := area.BoundingBox()
	for _, p := range path {
		if p.Lat < sw.Lat-1e-6 || p.Lat > ne.Lat+1e-6 || p.Lng < sw.Lng-1e-6 || p.Lng > ne.Lng+1e-6 {
			t.Fatalf("waypoint %v escapes area", p)
		}
	}
}

func TestBoustrophedonSerpentine(t *testing.T) {
	path, err := BoustrophedonPath(squareArea(100), 25)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive rows must alternate direction: row i ends where row
	// i+1 starts on the same side (short transition), i.e. the
	// transition distance must be about the spacing, not the full
	// width.
	for i := 1; i+1 < len(path); i += 2 {
		trans := geo.Haversine(path[i], path[i+1])
		if trans > 40 {
			t.Fatalf("transition %d is %.0f m; serpentine broken", i, trans)
		}
	}
}

func TestCoverageFractionSparse(t *testing.T) {
	area := squareArea(200)
	path, _ := BoustrophedonPath(area, 80)
	frac, err := CoverageFraction(area, path, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if frac > 0.6 {
		t.Fatalf("sparse sweep coverage = %v, should be partial", frac)
	}
	empty, err := CoverageFraction(area, nil, 10, 5)
	if err != nil || empty != 0 {
		t.Fatalf("empty path coverage = %v, %v", empty, err)
	}
	if _, err := CoverageFraction(area, path, 0, 5); err == nil {
		t.Fatal("zero radius must fail")
	}
}

func TestPartitionStrips(t *testing.T) {
	area := squareArea(300)
	strips, err := PartitionStrips(area, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(strips) != 3 {
		t.Fatalf("strips = %d", len(strips))
	}
	var total float64
	for _, s := range strips {
		total += s.AreaSquareMeters()
	}
	// Strips tile the bounding box; for a square area they tile the
	// area itself.
	if math.Abs(total-area.AreaSquareMeters())/area.AreaSquareMeters() > 0.02 {
		t.Fatalf("strip areas sum to %v, area is %v", total, area.AreaSquareMeters())
	}
	if _, err := PartitionStrips(area, 0); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := PartitionStrips(nil, 2); err == nil {
		t.Fatal("nil area must fail")
	}
}

func TestPlanMission(t *testing.T) {
	area := squareArea(300)
	m, err := PlanMission(area, []string{"u3", "u1", "u2"}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Assignments) != 3 {
		t.Fatalf("assignments = %d", len(m.Assignments))
	}
	uavs := m.UAVs()
	if uavs[0] != "u1" || uavs[2] != "u3" {
		t.Fatalf("UAVs = %v", uavs)
	}
	// Strips assigned deterministically west to east by sorted id.
	if m.Assignments["u1"].Path[0].Lng >= m.Assignments["u3"].Path[0].Lng {
		t.Fatal("strip order not deterministic")
	}
	if m.TotalPathLength() <= 0 {
		t.Fatal("zero total path length")
	}
	// Union of the three strip sweeps covers the whole area.
	var all []geo.LatLng
	for _, u := range uavs {
		all = append(all, m.Assignments[u].Path...)
	}
	frac, err := CoverageFraction(area, all, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.9 {
		t.Fatalf("fleet coverage = %v", frac)
	}
}

func TestPlanMissionValidation(t *testing.T) {
	area := squareArea(100)
	if _, err := PlanMission(area, nil, 10); err == nil {
		t.Error("no UAVs must fail")
	}
	if _, err := PlanMission(area, []string{""}, 10); err == nil {
		t.Error("empty id must fail")
	}
	if _, err := PlanMission(area, []string{"a", "a"}, 10); err == nil {
		t.Error("duplicate ids must fail")
	}
}

func TestRedistribute(t *testing.T) {
	area := squareArea(300)
	m, _ := PlanMission(area, []string{"u1", "u2", "u3"}, 25)
	remaining := m.Assignments["u2"].Path[4:]
	beforeU1 := len(m.Assignments["u1"].Path)
	beforeU3 := len(m.Assignments["u3"].Path)
	if err := m.Redistribute("u2", remaining); err != nil {
		t.Fatal(err)
	}
	if _, still := m.Assignments["u2"]; still {
		t.Fatal("failed UAV must be removed")
	}
	gained := (len(m.Assignments["u1"].Path) - beforeU1) + (len(m.Assignments["u3"].Path) - beforeU3)
	if gained != len(remaining) {
		t.Fatalf("redistributed %d waypoints, want %d", gained, len(remaining))
	}
	if err := m.Redistribute("ghost", nil); err == nil {
		t.Fatal("unknown UAV must fail")
	}
}

func TestRedistributeLastUAV(t *testing.T) {
	m, _ := PlanMission(squareArea(100), []string{"solo"}, 20)
	if err := m.Redistribute("solo", m.Assignments["solo"].Path); err == nil {
		t.Fatal("redistributing from the only UAV must fail")
	}
}

func TestRedistributeCascadeToLastSurvivor(t *testing.T) {
	m, _ := PlanMission(squareArea(300), []string{"u1", "u2"}, 25)
	before := len(m.Assignments["u2"].Path)
	handoff := m.Assignments["u1"].Path[2:]
	if err := m.Redistribute("u1", handoff); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Assignments["u2"].Path); got != before+len(handoff) {
		t.Fatalf("sole survivor has %d waypoints, want %d", got, before+len(handoff))
	}
	if len(m.Assignments) != 1 {
		t.Fatalf("expected a single assignment, have %d", len(m.Assignments))
	}
	// The survivor fails too: nobody is left to take over, the mission
	// plan empties and the caller must see the error.
	if err := m.Redistribute("u2", m.Assignments["u2"].Path); err == nil {
		t.Fatal("redistributing from the last survivor must fail")
	}
	if len(m.Assignments) != 0 {
		t.Fatal("failed survivor must still be removed from the plan")
	}
}

func TestRedistributeNothingRemaining(t *testing.T) {
	m, _ := PlanMission(squareArea(300), []string{"u1", "u2"}, 25)
	before := len(m.Assignments["u1"].Path)
	if err := m.Redistribute("u2", nil); err != nil {
		t.Fatal(err)
	}
	if len(m.Assignments["u1"].Path) != before {
		t.Fatal("no waypoints should be added")
	}
}

func TestAvailabilityTracker(t *testing.T) {
	tr, err := NewAvailabilityTracker(0, []string{"u1", "u2"})
	if err != nil {
		t.Fatal(err)
	}
	// u1 down from 250 to 310 (60 s of a 510 s mission) -> ~88%.
	if err := tr.MarkDown("u1", 250); err != nil {
		t.Fatal(err)
	}
	if err := tr.MarkUp("u1", 310); err != nil {
		t.Fatal(err)
	}
	a, err := tr.Availability("u1", 510)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 60.0/510
	if math.Abs(a-want) > 1e-9 {
		t.Fatalf("availability = %v, want %v", a, want)
	}
	// u2 never down.
	a2, _ := tr.Availability("u2", 510)
	if a2 != 1 {
		t.Fatalf("u2 availability = %v", a2)
	}
	fleet, err := tr.FleetAvailability(510)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fleet-(a+1)/2) > 1e-9 {
		t.Fatalf("fleet = %v", fleet)
	}
}

func TestAvailabilityOpenEndedDown(t *testing.T) {
	tr, _ := NewAvailabilityTracker(0, []string{"u1"})
	_ = tr.MarkDown("u1", 400)
	// Still down at mission end 500: 100 s down.
	a, _ := tr.Availability("u1", 500)
	if math.Abs(a-0.8) > 1e-9 {
		t.Fatalf("availability = %v, want 0.8", a)
	}
	// Double MarkDown is idempotent.
	_ = tr.MarkDown("u1", 450)
	a2, _ := tr.Availability("u1", 500)
	if math.Abs(a2-0.8) > 1e-9 {
		t.Fatalf("availability = %v after double down", a2)
	}
}

func TestAvailabilityValidation(t *testing.T) {
	if _, err := NewAvailabilityTracker(0, nil); err == nil {
		t.Error("no UAVs must fail")
	}
	tr, _ := NewAvailabilityTracker(0, []string{"u1"})
	if err := tr.MarkDown("ghost", 1); err == nil {
		t.Error("unknown UAV must fail")
	}
	if err := tr.MarkUp("ghost", 1); err == nil {
		t.Error("unknown UAV must fail")
	}
	if _, err := tr.Availability("ghost", 10); err == nil {
		t.Error("unknown UAV must fail")
	}
	if _, err := tr.Availability("u1", 0); err == nil {
		t.Error("zero duration must fail")
	}
}

func BenchmarkPlanMissionThreeUAVs(b *testing.B) {
	area := squareArea(500)
	uavs := []string{"u1", "u2", "u3"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanMission(area, uavs, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoverageFraction(b *testing.B) {
	area := squareArea(300)
	path, _ := BoustrophedonPath(area, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CoverageFraction(area, path, 15, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPlanMissionWithPlanner(t *testing.T) {
	area := squareArea(300)
	m, err := PlanMissionWith(area, []string{"u1", "u2"}, 40, ExpandingSquarePath)
	if err != nil {
		t.Fatal(err)
	}
	// Each task starts near its strip centre (expanding square).
	for u, task := range m.Assignments {
		centre, _ := task.Area.Centroid()
		first := geo.Haversine(task.Path[0], centre)
		last := geo.Haversine(task.Path[len(task.Path)-1], centre)
		if first > last {
			t.Fatalf("%s: expanding square must start at the centre (%.0f vs %.0f)", u, first, last)
		}
	}
	if _, err := PlanMissionWith(area, []string{"u1"}, 40, nil); err == nil {
		t.Fatal("nil planner must fail")
	}
}
