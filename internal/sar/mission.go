package sar

import (
	"errors"
	"fmt"
	"sort"

	"sesame/internal/geo"
)

// Task is one UAV's share of the search mission.
type Task struct {
	ID   int
	Area geo.Polygon
	Path []geo.LatLng
}

// Mission is the planned multi-UAV coverage mission.
type Mission struct {
	Area geo.Polygon
	// Assignments maps UAV id -> its task.
	Assignments map[string]*Task
}

// PathPlanner plans a coverage path over one area at the given track
// spacing. The Task Manager hosts planners as exchangeable algorithm
// services (paper §IV-A); BoustrophedonPath, SpiralPath and
// ExpandingSquarePath all satisfy the signature.
type PathPlanner func(area geo.Polygon, spacingM float64) ([]geo.LatLng, error)

// PlanMission partitions the area among the UAVs and plans a
// boustrophedon sweep inside each strip.
func PlanMission(area geo.Polygon, uavs []string, spacingM float64) (*Mission, error) {
	return PlanMissionWith(area, uavs, spacingM, BoustrophedonPath)
}

// PlanMissionWith is PlanMission with a caller-selected coverage
// planner for the per-UAV strips.
func PlanMissionWith(area geo.Polygon, uavs []string, spacingM float64, planner PathPlanner) (*Mission, error) {
	if len(uavs) == 0 {
		return nil, errors.New("sar: no UAVs")
	}
	if planner == nil {
		return nil, errors.New("sar: nil path planner")
	}
	seen := map[string]bool{}
	for _, u := range uavs {
		if u == "" {
			return nil, errors.New("sar: empty UAV id")
		}
		if seen[u] {
			return nil, fmt.Errorf("sar: duplicate UAV id %q", u)
		}
		seen[u] = true
	}
	strips, err := PartitionStrips(area, len(uavs))
	if err != nil {
		return nil, err
	}
	m := &Mission{Area: area, Assignments: make(map[string]*Task, len(uavs))}
	ordered := append([]string(nil), uavs...)
	sort.Strings(ordered)
	for i, u := range ordered {
		path, err := planner(strips[i], spacingM)
		if err != nil {
			return nil, fmt.Errorf("sar: planning strip %d: %w", i, err)
		}
		m.Assignments[u] = &Task{ID: i, Area: strips[i], Path: path}
	}
	return m, nil
}

// UAVs returns the assigned UAV ids in sorted order.
func (m *Mission) UAVs() []string {
	out := make([]string, 0, len(m.Assignments))
	for u := range m.Assignments {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// TotalPathLength returns the summed planned path length in metres.
func (m *Mission) TotalPathLength() float64 {
	var sum float64
	for _, t := range m.Assignments {
		sum += geo.PathLength(t.Path)
	}
	return sum
}

// Redistribute reassigns the failed UAV's unfinished waypoints among
// the surviving UAVs (the Fig. 1 "redistribute task among remaining
// capable UAVs" behaviour). remaining is the portion of the failed
// UAV's path not yet flown; it is split into contiguous chunks appended
// to the survivors' paths. The failed UAV is removed from the mission.
func (m *Mission) Redistribute(failedUAV string, remaining []geo.LatLng) error {
	if _, ok := m.Assignments[failedUAV]; !ok {
		return fmt.Errorf("sar: UAV %q not in mission", failedUAV)
	}
	delete(m.Assignments, failedUAV)
	if len(m.Assignments) == 0 {
		return errors.New("sar: no surviving UAVs to take over")
	}
	if len(remaining) == 0 {
		return nil
	}
	survivors := m.UAVs()
	k := len(survivors)
	chunk := (len(remaining) + k - 1) / k
	for i, u := range survivors {
		lo := i * chunk
		if lo >= len(remaining) {
			break
		}
		hi := lo + chunk
		if hi > len(remaining) {
			hi = len(remaining)
		}
		m.Assignments[u].Path = append(m.Assignments[u].Path, remaining[lo:hi]...)
	}
	return nil
}

// AvailabilityTracker measures per-UAV availability (fraction of the
// mission during which the UAV was operational) — the §V-A metric
// where SESAME reaches ~91% vs ~80% for the reactive baseline.
type AvailabilityTracker struct {
	start     float64
	downSince map[string]float64
	downTotal map[string]float64
	uavs      map[string]bool
}

// NewAvailabilityTracker starts tracking at mission time start for the
// given fleet.
func NewAvailabilityTracker(start float64, uavs []string) (*AvailabilityTracker, error) {
	if len(uavs) == 0 {
		return nil, errors.New("sar: no UAVs to track")
	}
	tr := &AvailabilityTracker{
		start:     start,
		downSince: make(map[string]float64),
		downTotal: make(map[string]float64),
		uavs:      make(map[string]bool, len(uavs)),
	}
	for _, u := range uavs {
		tr.uavs[u] = true
	}
	return tr, nil
}

// MarkDown records the UAV becoming unavailable at time t. Repeated
// calls while down are ignored.
func (tr *AvailabilityTracker) MarkDown(uav string, t float64) error {
	if !tr.uavs[uav] {
		return fmt.Errorf("sar: unknown UAV %q", uav)
	}
	if _, down := tr.downSince[uav]; !down {
		tr.downSince[uav] = t
	}
	return nil
}

// MarkUp records the UAV back in service at time t.
func (tr *AvailabilityTracker) MarkUp(uav string, t float64) error {
	if !tr.uavs[uav] {
		return fmt.Errorf("sar: unknown UAV %q", uav)
	}
	if since, down := tr.downSince[uav]; down {
		tr.downTotal[uav] += t - since
		delete(tr.downSince, uav)
	}
	return nil
}

// Availability returns the UAV's availability over [start, end].
func (tr *AvailabilityTracker) Availability(uav string, end float64) (float64, error) {
	if !tr.uavs[uav] {
		return 0, fmt.Errorf("sar: unknown UAV %q", uav)
	}
	dur := end - tr.start
	if dur <= 0 {
		return 0, errors.New("sar: non-positive mission duration")
	}
	down := tr.downTotal[uav]
	if since, isDown := tr.downSince[uav]; isDown && end > since {
		down += end - since
	}
	av := 1 - down/dur
	if av < 0 {
		av = 0
	}
	return av, nil
}

// FleetAvailability returns the mean availability over the fleet.
func (tr *AvailabilityTracker) FleetAvailability(end float64) (float64, error) {
	var sum float64
	n := 0
	for u := range tr.uavs {
		a, err := tr.Availability(u, end)
		if err != nil {
			return 0, err
		}
		sum += a
		n++
	}
	return sum / float64(n), nil
}
