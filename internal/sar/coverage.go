// Package sar implements the search-and-rescue mission algorithms the
// multi-UAV platform hosts (paper §IV): boustrophedon area-coverage
// path planning, partitioning of the search area across the fleet,
// task redistribution when a UAV drops out (the Fig. 1 mission-level
// behaviour), detection aggregation, and the mission availability
// accounting behind the §V-A result.
package sar

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sesame/internal/geo"
)

// BoustrophedonPath plans a serpentine sweep over the area with the
// given track spacing in metres. Sweep lines run west-east; the path
// serpentines south to north. The returned waypoints are clipped to
// the polygon.
func BoustrophedonPath(area geo.Polygon, spacingM float64) ([]geo.LatLng, error) {
	if len(area) < 3 {
		return nil, errors.New("sar: area needs at least 3 vertices")
	}
	if spacingM <= 0 {
		return nil, errors.New("sar: spacing must be positive")
	}
	origin, err := area.Centroid()
	if err != nil {
		return nil, err
	}
	pr := geo.NewProjection(origin)
	poly := make([]geo.ENU, len(area))
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i, p := range area {
		poly[i] = pr.ToENU(p)
		if poly[i].North < minY {
			minY = poly[i].North
		}
		if poly[i].North > maxY {
			maxY = poly[i].North
		}
	}
	var path []geo.LatLng
	leftToRight := true
	for y := minY + spacingM/2; y < maxY; y += spacingM {
		xs := rowIntersections(poly, y)
		if len(xs) < 2 {
			continue
		}
		// Use the outermost span (sufficient for the convex-ish search
		// areas SAR missions use).
		x0, x1 := xs[0], xs[len(xs)-1]
		a := pr.ToLatLng(geo.ENU{East: x0, North: y})
		b := pr.ToLatLng(geo.ENU{East: x1, North: y})
		if leftToRight {
			path = append(path, a, b)
		} else {
			path = append(path, b, a)
		}
		leftToRight = !leftToRight
	}
	if len(path) == 0 {
		return nil, fmt.Errorf("sar: spacing %.0f m produced no sweep lines", spacingM)
	}
	return path, nil
}

// rowIntersections returns the sorted East coordinates where the
// horizontal line North=y crosses the polygon boundary.
func rowIntersections(poly []geo.ENU, y float64) []float64 {
	var xs []float64
	n := len(poly)
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		if (a.North > y) == (b.North > y) {
			continue
		}
		t := (y - a.North) / (b.North - a.North)
		xs = append(xs, a.East+t*(b.East-a.East))
	}
	sort.Float64s(xs)
	return xs
}

// PartitionStrips splits the area into k vertical (north-south) strips
// of equal width, the coordinated-coverage scheme of Fig. 4 where each
// UAV scans one coloured band.
func PartitionStrips(area geo.Polygon, k int) ([]geo.Polygon, error) {
	if len(area) < 3 {
		return nil, errors.New("sar: area needs at least 3 vertices")
	}
	if k < 1 {
		return nil, errors.New("sar: need at least one partition")
	}
	sw, ne := area.BoundingBox()
	out := make([]geo.Polygon, 0, k)
	width := (ne.Lng - sw.Lng) / float64(k)
	for i := 0; i < k; i++ {
		lo := sw.Lng + float64(i)*width
		hi := lo + width
		out = append(out, geo.Polygon{
			{Lat: sw.Lat, Lng: lo},
			{Lat: sw.Lat, Lng: hi},
			{Lat: ne.Lat, Lng: hi},
			{Lat: ne.Lat, Lng: lo},
		})
	}
	return out, nil
}

// CoverageFraction estimates how much of the area lies within radiusM
// of the path, by sampling a cellM-spaced grid. It is the scoring
// metric for coverage experiments.
func CoverageFraction(area geo.Polygon, path []geo.LatLng, radiusM, cellM float64) (float64, error) {
	if len(area) < 3 {
		return 0, errors.New("sar: area needs at least 3 vertices")
	}
	if radiusM <= 0 || cellM <= 0 {
		return 0, errors.New("sar: radius and cell must be positive")
	}
	if len(path) == 0 {
		return 0, nil
	}
	origin, err := area.Centroid()
	if err != nil {
		return 0, err
	}
	pr := geo.NewProjection(origin)
	poly := make([]geo.ENU, len(area))
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i, p := range area {
		poly[i] = pr.ToENU(p)
		minX = math.Min(minX, poly[i].East)
		maxX = math.Max(maxX, poly[i].East)
		minY = math.Min(minY, poly[i].North)
		maxY = math.Max(maxY, poly[i].North)
	}
	segs := make([]geo.ENU, len(path))
	for i, p := range path {
		segs[i] = pr.ToENU(p)
	}
	var total, covered int
	for y := minY + cellM/2; y < maxY; y += cellM {
		for x := minX + cellM/2; x < maxX; x += cellM {
			pt := geo.ENU{East: x, North: y}
			if !area.Contains(pr.ToLatLng(pt)) {
				continue
			}
			total++
			if distToPath(pt, segs) <= radiusM {
				covered++
			}
		}
	}
	if total == 0 {
		return 0, errors.New("sar: no sample cells inside area")
	}
	return float64(covered) / float64(total), nil
}

// distToPath returns the minimum distance from pt to the polyline.
func distToPath(pt geo.ENU, path []geo.ENU) float64 {
	best := math.Inf(1)
	for i := 1; i < len(path); i++ {
		if d := distToSegment(pt, path[i-1], path[i]); d < best {
			best = d
		}
	}
	if len(path) == 1 {
		best = pt.Sub(path[0]).Norm()
	}
	return best
}

func distToSegment(p, a, b geo.ENU) float64 {
	ab := b.Sub(a)
	den := ab.East*ab.East + ab.North*ab.North
	if den == 0 {
		return p.Sub(a).Norm()
	}
	ap := p.Sub(a)
	t := (ap.East*ab.East + ap.North*ab.North) / den
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return p.Sub(a.Add(ab.Scale(t))).Norm()
}
