package campaign

// The batch engine: a bounded worker pool executes grid points with
// run-level parallelism while a single aggregator goroutine journals
// every completed run on arrival and emits output rows strictly in run
// order. A windowed dispatcher bounds how far execution may run ahead
// of emission, so the engine never buffers O(N) results no matter how
// skewed individual run times are.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Options tunes an engine.
type Options struct {
	// OutDir is the campaign directory: manifest, journal and every
	// output file land here.
	OutDir string
	// Workers bounds run-level parallelism (0 = GOMAXPROCS).
	Workers int
	// Resume continues a killed sweep from OutDir's journal; without it
	// an existing journal is an error (campaign outputs are evidence,
	// never silently overwritten).
	Resume bool
	// MaxRuns stops the sweep after that many runs have been executed
	// this invocation (0 = no limit). Journal-served runs don't count.
	// The partial sweep resumes later with -resume.
	MaxRuns int
	// SyncEvery is the journal fsync cadence in completed runs
	// (default 16): a kill loses at most this many finished runs.
	SyncEvery int
	// OnResult, when non-nil, observes every run result as it is
	// emitted in run order (progress reporting, tests).
	OnResult func(Result)
	// RunRetries enables run-level graceful degradation: a failing run
	// is re-executed up to RunRetries extra times, and one that
	// exhausts its budget is journaled as a quarantined row
	// (status=failed, attempts=N) instead of aborting the sweep. 0
	// keeps the legacy fail-fast behaviour: the first run error kills
	// the campaign.
	RunRetries int
	// RunFaultHook, when non-nil, is consulted before each execution
	// attempt of each run (chaos injection, tests). A non-nil error
	// counts as a failed attempt of that run. Deterministic hooks keyed
	// on (index, attempt) keep resumed sweeps byte-identical.
	RunFaultHook func(index, attempt int) error
}

// Summary reports one Run invocation.
type Summary struct {
	Total      int  // runs the spec expands to
	Replayed   int  // served from the journal
	Executed   int  // simulated this invocation
	Emitted    int  // rows written to the output files
	Complete   bool // every run emitted, aggregates written
	Elapsed    time.Duration
	RunsPerSec float64 // executed runs per wall second
}

// Engine executes one campaign sweep.
type Engine struct {
	spec Spec
	opts Options
	runs []Run
}

// New validates the spec and prepares the expansion.
func New(spec Spec, opts Options) (*Engine, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.OutDir == "" {
		return nil, errors.New("campaign: Options.OutDir is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 16
	}
	return &Engine{spec: spec, opts: opts, runs: spec.Expand()}, nil
}

// Spec returns the normalized spec the engine runs.
func (e *Engine) Spec() Spec { return e.spec }

// Total returns the number of runs the sweep expands to.
func (e *Engine) Total() int { return len(e.runs) }

// Workers returns the resolved worker-pool size.
func (e *Engine) Workers() int { return e.opts.Workers }

// item pairs a result with its provenance for the aggregator.
type item struct {
	res      Result
	replayed bool // served from the journal, don't re-journal
}

// runWithRetry executes one grid point under the run-level retry
// policy. Without RunRetries the first error propagates (fail-fast,
// the pre-retry contract). With it, each failure burns one attempt;
// a run that exhausts 1+RunRetries attempts is reduced to a
// quarantined Result (status=failed) that flows through journal,
// outputs and resume like any other row, so one poisoned grid point
// cannot sink a million-run sweep. Journaled failed rows are replayed
// as-is on resume — they are never retried again, which is what keeps
// kill/resume byte-identical.
func (e *Engine) runWithRetry(run Run, sc *scratch) (Result, error) {
	attempts := 0
	var lastErr error
	for attempts <= e.opts.RunRetries {
		attempts++
		var err error
		if hook := e.opts.RunFaultHook; hook != nil {
			err = hook(run.Index, attempts)
		}
		var res Result
		if err == nil {
			res, err = executeRun(&e.spec, run, sc)
		}
		if err == nil {
			if attempts > 1 {
				res.Attempts = attempts
			}
			return res, nil
		}
		lastErr = err
		if e.opts.RunRetries <= 0 {
			return Result{}, err
		}
	}
	return Result{
		Index: run.Index, Key: run.Key(), Seed: run.Seed,
		Fleet: run.Fleet, Cells: run.Cells,
		Link: run.Link.Name, Fault: run.Fault.Name,
		Scenario:      run.Scenario,
		SafetyDetectS: -1, SecurityDetectS: -1,
		Status: "failed", Attempts: attempts, Error: lastErr.Error(),
	}, nil
}

// Run executes the sweep. Cancelling ctx stops dispatching new runs;
// in-flight runs finish and are journaled, so a later Resume invocation
// picks up exactly where the kill landed. The output files are only
// finalized (risk curves, ECDFs, aggregates) when every run emitted.
func (e *Engine) Run(ctx context.Context) (*Summary, error) {
	startWall := time.Now()
	manifest := Manifest{
		Name:       e.spec.Name,
		SpecDigest: e.spec.Digest(),
		TotalRuns:  len(e.runs),
		Spec:       e.spec,
	}

	// Journal: fresh, or replayed for resume.
	var (
		jnl       *journal
		completed map[int]Result
	)
	prev, prevCompleted, intactLen, err := readJournal(e.opts.OutDir)
	switch {
	case err == nil:
		if !e.opts.Resume {
			return nil, fmt.Errorf("campaign: %s already holds a journal; pass Resume to continue it", e.opts.OutDir)
		}
		if prev.SpecDigest != manifest.SpecDigest {
			return nil, fmt.Errorf("campaign: journal in %s belongs to spec %s, not %s (edit the spec and you start a new campaign)",
				e.opts.OutDir, prev.SpecDigest, manifest.SpecDigest)
		}
		completed = prevCompleted
		if jnl, err = appendJournal(e.opts.OutDir, intactLen, e.opts.SyncEvery); err != nil {
			return nil, err
		}
	case errors.Is(err, errNoJournal):
		if jnl, err = createJournal(e.opts.OutDir, manifest, e.opts.SyncEvery); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	defer jnl.close()

	if err := writeManifest(e.opts.OutDir, manifest); err != nil {
		return nil, err
	}

	agg, err := newAggregator(e.opts.OutDir, &e.spec)
	if err != nil {
		return nil, err
	}

	// The emission window: the dispatcher acquires one slot per run, the
	// aggregator releases it when the run's row is emitted in order.
	window := 4 * e.opts.Workers
	if window < 64 {
		window = 64
	}
	sem := make(chan struct{}, window)

	jobs := make(chan Run)
	results := make(chan item, e.opts.Workers)

	var (
		firstErr error
		errOnce  sync.Once
	)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err; cancel() })
	}

	// Workers: each owns a scratch reused across its runs.
	var workWG sync.WaitGroup
	for w := 0; w < e.opts.Workers; w++ {
		workWG.Add(1)
		go func() {
			defer workWG.Done()
			sc := newScratch()
			for run := range jobs {
				res, err := e.runWithRetry(run, sc)
				if err != nil {
					fail(fmt.Errorf("run %s: %w", run.Key(), err))
					return
				}
				results <- item{res: res}
			}
		}()
	}

	// Aggregator: journal on arrival (any order), emit in run order.
	summary := &Summary{Total: len(e.runs)}
	var aggWG sync.WaitGroup
	var aggErr error
	pending := map[int]Result{}
	next := 0
	aggWG.Add(1)
	go func() {
		defer aggWG.Done()
		for it := range results {
			if !it.replayed {
				if err := jnl.record(it.res); err != nil {
					fail(err)
					continue
				}
			}
			pending[it.res.Index] = it.res
			for {
				res, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if aggErr == nil {
					aggErr = agg.emit(res)
					if aggErr != nil {
						fail(aggErr)
					}
				}
				if e.opts.OnResult != nil {
					e.opts.OnResult(res)
				}
				summary.Emitted++
				next++
				<-sem
			}
		}
	}()

	// Dispatcher: strictly in expansion order, bounded by the window.
	executed := 0
dispatch:
	for _, run := range e.runs {
		select {
		case sem <- struct{}{}:
		case <-runCtx.Done():
			break dispatch
		}
		if res, ok := completed[run.Index]; ok {
			if res.Key != run.Key() {
				fail(fmt.Errorf("campaign: journaled run %d has key %s, expansion says %s", run.Index, res.Key, run.Key()))
				break dispatch
			}
			summary.Replayed++
			results <- item{res: res, replayed: true}
			continue
		}
		if e.opts.MaxRuns > 0 && executed >= e.opts.MaxRuns {
			break dispatch
		}
		select {
		case jobs <- run:
			executed++
		case <-runCtx.Done():
			break dispatch
		}
	}
	close(jobs)
	workWG.Wait()
	close(results)
	aggWG.Wait()

	summary.Executed = executed
	summary.Complete = summary.Emitted == len(e.runs) && firstErr == nil
	closeErr := agg.close(summary.Complete)
	if err := jnl.close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if closeErr != nil && firstErr == nil {
		firstErr = closeErr
	}
	summary.Elapsed = time.Since(startWall)
	if s := summary.Elapsed.Seconds(); s > 0 {
		summary.RunsPerSec = float64(summary.Executed) / s
	}
	if firstErr != nil {
		return summary, firstErr
	}
	return summary, nil
}
