package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sesame/internal/flightrec"
	"sesame/internal/scenario"
)

// scenarioSpec is the shared scenarios-axis sweep: 1 seed × 2
// archetypes, each run flying a fully generated world to completion.
func scenarioSpec() Spec {
	return Spec{
		Name:      "scen",
		SeedFrom:  11,
		SeedCount: 1,
		Scenarios: []string{scenario.MaritimeSAR, scenario.UrbanCanyon},
	}
}

func TestScenarioAxisExpand(t *testing.T) {
	spec := scenarioSpec()
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	runs := spec.Expand()
	if len(runs) != spec.Total() || len(runs) != 2 {
		t.Fatalf("expanded %d runs, want 2", len(runs))
	}
	if got, want := runs[0].Key(), "s11-f3-c0-nominal-none-maritime_sar"; got != want {
		t.Fatalf("first key %q, want %q", got, want)
	}
	if got := runs[1].GroupKey(); !strings.HasSuffix(got, "-urban_canyon") {
		t.Fatalf("group key %q does not carry the scenario axis", got)
	}

	// The axis is opt-in: a legacy spec serializes without it, so
	// pre-axis journals and spec digests stay valid.
	legacy := tinySpec()
	legacy.Normalize()
	data, err := json.Marshal(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "scenarios") {
		t.Fatalf("legacy spec serialization grew a scenarios field: %s", data)
	}
	if got, want := legacy.Expand()[0].Key(), "s1-f3-c0-nominal-none"; got != want {
		t.Fatalf("legacy run key changed: %q, want %q", got, want)
	}
}

func TestScenarioAxisValidate(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Spec)
		want string
	}{
		{"unknown-archetype", func(s *Spec) { s.Scenarios = []string{"alpine"} }, "unknown scenario archetype"},
		{"duplicate", func(s *Spec) { s.Scenarios = append(s.Scenarios, scenario.MaritimeSAR) }, "duplicate scenario"},
		{"with-links", func(s *Spec) { s.Links = []LinkVariant{{Name: "lossy"}} }, "replaces the links/faults"},
		{"with-faults", func(s *Spec) { s.Faults = []FaultVariant{{Name: "battery", BatteryAtS: 60}} }, "replaces the links/faults"},
		{"with-persons", func(s *Spec) { s.Persons = 5 }, "replaces persons"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := scenarioSpec()
			tc.edit(&spec)
			spec.Normalize()
			err := spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestScenarioAxisCampaign flies a scenarios-axis sweep end to end:
// the runs must complete, the per-run CSV must carry the scenario
// column, the aggregates must group per archetype, and a standalone
// rerun of a journaled run must reproduce its digest bit for bit.
func TestScenarioAxisCampaign(t *testing.T) {
	dir := t.TempDir()
	spec := scenarioSpec()
	sum := runCampaign(t, spec, Options{OutDir: dir, Workers: 2})
	if !sum.Complete || sum.Emitted != 2 {
		t.Fatalf("summary %+v, want complete with 2 emitted", sum)
	}

	csvData, err := os.ReadFile(filepath.Join(dir, RunsCSVName))
	if err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(string(csvData), "\n", 2)[0]
	if !strings.HasSuffix(header, ",scenario") {
		t.Fatalf("runs.csv header %q lacks the trailing scenario column", header)
	}

	agg, err := ReadAggregates(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Groups) != 2 {
		t.Fatalf("aggregates hold %d groups, want one per archetype", len(agg.Groups))
	}
	seen := map[string]bool{}
	for _, g := range agg.Groups {
		if g.Scenario == "" || !strings.HasSuffix(g.Group, "-"+g.Scenario) {
			t.Fatalf("group %+v lacks its scenario identity", g)
		}
		seen[g.Scenario] = true
	}
	if !seen[scenario.MaritimeSAR] || !seen[scenario.UrbanCanyon] {
		t.Fatalf("groups %v do not cover both archetypes", seen)
	}

	completed, err := ReadResults(dir)
	if err != nil {
		t.Fatal(err)
	}
	for idx, want := range completed {
		if want.Scenario == "" || want.Digest == "" {
			t.Fatalf("journaled run %d = %+v, want scenario identity and digest", idx, want)
		}
		got, err := RerunOne(spec, idx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest != want.Digest {
			t.Errorf("run %d (%s): standalone rerun digest %s != journaled %s",
				idx, want.Key, got.Digest[:16], want.Digest[:16])
		}
	}
}

// TestScenarioAxisResumeByteIdentical kills a scenarios-axis sweep
// after one run and resumes it: the merged outputs must be
// byte-identical to the uninterrupted sweep's.
func TestScenarioAxisResumeByteIdentical(t *testing.T) {
	refDir := t.TempDir()
	runCampaign(t, scenarioSpec(), Options{OutDir: refDir, Workers: 2})
	ref := readOutputs(t, refDir)

	dir := t.TempDir()
	eng, err := New(scenarioSpec(), Options{OutDir: dir, Workers: 1, MaxRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Complete || sum.Executed != 1 {
		t.Fatalf("partial summary %+v, want 1 executed, incomplete", sum)
	}
	sum = runCampaign(t, scenarioSpec(), Options{OutDir: dir, Workers: 2, Resume: true})
	if !sum.Complete || sum.Replayed != 1 {
		t.Fatalf("resumed summary %+v, want complete with 1 replayed", sum)
	}
	compareOutputs(t, ref, readOutputs(t, dir))
}

// lastJournaledRun decodes dir's journal and returns the final intact
// run record — the row a kill would leave on the tail.
func lastJournaledRun(t *testing.T, dir string) Result {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:len(journalMagic)]) != journalMagic {
		t.Fatalf("%s is not a campaign journal", dir)
	}
	var last Result
	found := false
	for off := len(journalMagic); off < len(buf); {
		rec, n, err := flightrec.DecodeRecord(buf[off:])
		if err != nil {
			break
		}
		if rec.Type == journalTypeRun {
			if err := json.Unmarshal(rec.Payload, &last); err != nil {
				t.Fatal(err)
			}
			found = true
		}
		off += n
	}
	if !found {
		t.Fatal("journal holds no run records")
	}
	return last
}

// TestResumeAfterTrailingQuarantinedRow pins the resume edge case
// where the journal's final record is a quarantined status=failed row:
// the resumed sweep must replay it as-is (never re-retry it) and merge
// byte-identically with an uninterrupted sweep.
func TestResumeAfterTrailingQuarantinedRow(t *testing.T) {
	hook := func(index, attempt int) error {
		if index == 1 {
			return fmt.Errorf("injected: run %d permanently down", index)
		}
		return nil
	}
	refDir := t.TempDir()
	runCampaign(t, tinySpec(), Options{
		OutDir: refDir, Workers: 2, RunRetries: 1, RunFaultHook: hook,
	})
	ref := readOutputs(t, refDir)

	// One worker + MaxRuns=2 journals exactly runs 0 and 1 in order, so
	// the quarantined row is the journal's last record.
	dir := t.TempDir()
	eng, err := New(tinySpec(), Options{
		OutDir: dir, Workers: 1, MaxRuns: 2, RunRetries: 1, RunFaultHook: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Complete || sum.Executed != 2 {
		t.Fatalf("partial summary %+v, want 2 executed, incomplete", sum)
	}
	if last := lastJournaledRun(t, dir); !last.Failed() || last.Index != 1 {
		t.Fatalf("journal tail = %+v, want the quarantined run 1", last)
	}

	sum = runCampaign(t, tinySpec(), Options{
		OutDir: dir, Workers: 2, Resume: true, RunRetries: 1, RunFaultHook: hook,
	})
	if !sum.Complete || sum.Replayed != 2 {
		t.Fatalf("resumed summary %+v, want complete with 2 replayed (failed row never re-retried)", sum)
	}
	compareOutputs(t, ref, readOutputs(t, dir))
}
