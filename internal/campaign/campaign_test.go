package campaign

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"sesame/internal/linksim"
)

// tinySpec is the shared test sweep: 2 seeds × 2 links × 2 faults = 8
// runs, short horizon so the whole matrix flies in a few seconds.
func tinySpec() Spec {
	return Spec{
		Name:      "tiny",
		SeedFrom:  1,
		SeedCount: 2,
		HorizonS:  240,
		AreaSideM: 200,
		Links: []LinkVariant{
			{Name: "nominal"},
			{Name: "lossy-10", Profile: linksim.Profile{DropProb: 0.10}},
		},
		Faults: []FaultVariant{
			{Name: "none"},
			{Name: "battery-60", BatteryAtS: 60},
		},
	}
}

// outputFiles are the merged result set whose bytes must not depend on
// kills, resumes, worker counts or scheduling.
var outputFiles = []string{RunsCSVName, RunsJSONLName, CurvesCSVName, ECDFCSVName, AggregatesName, ManifestName}

func runCampaign(t *testing.T, spec Spec, opts Options) *Summary {
	t.Helper()
	eng, err := New(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func readOutputs(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range outputFiles {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		out[name] = data
	}
	return out
}

func TestExpandDeterministic(t *testing.T) {
	spec := tinySpec()
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	runs := spec.Expand()
	if len(runs) != spec.Total() || len(runs) != 8 {
		t.Fatalf("expanded %d runs, want 8", len(runs))
	}
	seen := map[string]bool{}
	for i, r := range runs {
		if r.Index != i {
			t.Fatalf("run %d has index %d", i, r.Index)
		}
		if seen[r.Key()] {
			t.Fatalf("duplicate run key %s", r.Key())
		}
		seen[r.Key()] = true
	}
	if runs[0].Key() != "s1-f3-c0-nominal-none" {
		t.Fatalf("unexpected first key %s", runs[0].Key())
	}
	other := tinySpec()
	other.Normalize()
	if other.Digest() != spec.Digest() {
		t.Fatal("same spec, different digest")
	}
	other.HorizonS++
	if other.Digest() == spec.Digest() {
		t.Fatal("edited spec kept its digest")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := tinySpec()
	bad.Faults = append(bad.Faults, FaultVariant{Name: "spoof-u9", SpoofAtS: 30, SpoofUAV: "u9"})
	bad.Normalize()
	if err := bad.Validate(); err == nil {
		t.Fatal("fault targeting u9 in a 3-UAV fleet validated")
	}
	dup := tinySpec()
	dup.Links = append(dup.Links, LinkVariant{Name: "nominal"})
	dup.Normalize()
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate link variant validated")
	}
}

// TestCampaignUninterrupted is the baseline: a full sweep completes,
// every run is journaled and the outputs exist.
func TestCampaignUninterrupted(t *testing.T) {
	dir := t.TempDir()
	sum := runCampaign(t, tinySpec(), Options{OutDir: dir, Workers: 2})
	if !sum.Complete || sum.Emitted != 8 || sum.Executed != 8 {
		t.Fatalf("summary %+v, want complete with 8/8", sum)
	}
	_, completed, _, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 8 {
		t.Fatalf("journal holds %d runs, want 8", len(completed))
	}
	readOutputs(t, dir) // must all exist
}

// TestCampaignResumeByteIdentical kills a sweep after K runs, resumes
// it, and requires the merged result set to be byte-identical to an
// uninterrupted sweep — for both the clean MaxRuns cut and a hard
// mid-flight context cancellation.
func TestCampaignResumeByteIdentical(t *testing.T) {
	refDir := t.TempDir()
	runCampaign(t, tinySpec(), Options{OutDir: refDir, Workers: 2})
	ref := readOutputs(t, refDir)

	t.Run("max-runs-cut", func(t *testing.T) {
		dir := t.TempDir()
		eng, err := New(tinySpec(), Options{OutDir: dir, Workers: 2, MaxRuns: 3})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := eng.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if sum.Complete || sum.Executed != 3 {
			t.Fatalf("partial summary %+v, want 3 executed, incomplete", sum)
		}
		sum = runCampaign(t, tinySpec(), Options{OutDir: dir, Workers: 2, Resume: true})
		if !sum.Complete || sum.Replayed != 3 || sum.Executed != 5 {
			t.Fatalf("resumed summary %+v, want complete with 3 replayed + 5 executed", sum)
		}
		compareOutputs(t, ref, readOutputs(t, dir))
	})

	t.Run("hard-cancel", func(t *testing.T) {
		dir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		eng, err := New(tinySpec(), Options{OutDir: dir, Workers: 2, SyncEvery: 1,
			OnResult: func(Result) { cancel() }})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := eng.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Complete {
			t.Fatalf("cancelled sweep reported complete: %+v", sum)
		}
		sum = runCampaign(t, tinySpec(), Options{OutDir: dir, Workers: 2, Resume: true})
		if !sum.Complete {
			t.Fatalf("resume did not complete: %+v", sum)
		}
		if sum.Replayed == 0 {
			t.Fatalf("resume replayed nothing: %+v", sum)
		}
		compareOutputs(t, ref, readOutputs(t, dir))
	})

	t.Run("torn-tail", func(t *testing.T) {
		dir := t.TempDir()
		eng, err := New(tinySpec(), Options{OutDir: dir, Workers: 2, MaxRuns: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Simulate a kill mid-append: garbage on the journal tail.
		f, err := os.OpenFile(filepath.Join(dir, JournalName), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0x17, 0xff, 0x03}); err != nil {
			t.Fatal(err)
		}
		f.Close()
		sum := runCampaign(t, tinySpec(), Options{OutDir: dir, Workers: 2, Resume: true})
		if !sum.Complete {
			t.Fatalf("resume over torn tail did not complete: %+v", sum)
		}
		compareOutputs(t, ref, readOutputs(t, dir))
	})
}

func compareOutputs(t *testing.T, want, got map[string][]byte) {
	t.Helper()
	for _, name := range outputFiles {
		if !reflect.DeepEqual(want[name], got[name]) {
			t.Errorf("%s differs between uninterrupted and resumed sweep (%d vs %d bytes)",
				name, len(want[name]), len(got[name]))
		}
	}
}

// TestResumeGuards: resuming needs the flag, and an edited spec must
// be refused.
func TestResumeGuards(t *testing.T) {
	dir := t.TempDir()
	runCampaign(t, tinySpec(), Options{OutDir: dir, Workers: 1, MaxRuns: 1})
	if _, err := New(tinySpec(), Options{OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	eng, _ := New(tinySpec(), Options{OutDir: dir})
	if _, err := eng.Run(context.Background()); err == nil {
		t.Fatal("re-running over an existing journal without Resume succeeded")
	}
	edited := tinySpec()
	edited.HorizonS = 300
	eng, err := New(edited, Options{OutDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err == nil {
		t.Fatal("resume with an edited spec succeeded")
	}
}

// TestRerunOneDigest is the triage determinism gate: every journaled
// run, re-executed standalone from its (seed, params) tuple, must
// reproduce the recorded digest bit for bit.
func TestRerunOneDigest(t *testing.T) {
	dir := t.TempDir()
	runCampaign(t, tinySpec(), Options{OutDir: dir, Workers: 2})
	_, completed, _, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for idx, want := range completed {
		got, err := RerunOne(tinySpec(), idx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest != want.Digest {
			t.Errorf("run %d (%s): standalone rerun digest %s != journaled %s",
				idx, want.Key, got.Digest[:16], want.Digest[:16])
		}
		if got.Completed != want.Completed || got.Ticks != want.Ticks {
			t.Errorf("run %d: rerun outcome diverged: %+v vs %+v", idx, got, want)
		}
	}
}

// naivePercentile is the insertion-sort helper the experiment files
// used to carry; Percentile must match it exactly.
func naivePercentile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

func TestPercentileMatchesNaive(t *testing.T) {
	xs := []float64{5, 1, 4, 4, 8, 0, -3, 2.5, 9, 7, 7, 6}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 1} {
		if got, want := Percentile(xs, q), naivePercentile(xs, q); got != want {
			t.Errorf("Percentile(%v) = %v, naive = %v", q, got, want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("Percentile of empty input should be NaN")
	}
}

func TestECDF(t *testing.T) {
	pts := ECDF([]float64{3, 1, 3, 2})
	want := []ECDFPoint{{1, 0.25}, {2, 0.5}, {3, 1}}
	if !reflect.DeepEqual(pts, want) {
		t.Fatalf("ECDF = %v, want %v", pts, want)
	}
	if ECDF(nil) != nil {
		t.Fatal("ECDF of empty input should be nil")
	}
}

func TestReservoirDecimation(t *testing.T) {
	r := NewReservoir(8)
	for i := 0; i < 100; i++ {
		r.Add(float64(i))
	}
	if r.Count() != 100 {
		t.Fatalf("count %d, want 100", r.Count())
	}
	if len(r.Values()) > 8 {
		t.Fatalf("reservoir holds %d > cap 8", len(r.Values()))
	}
	// Deterministic: same stream, same survivors.
	r2 := NewReservoir(8)
	for i := 0; i < 100; i++ {
		r2.Add(float64(i))
	}
	if !reflect.DeepEqual(r.Values(), r2.Values()) {
		t.Fatal("same stream produced different reservoirs")
	}
	// Survivors are a systematic subsample: strictly increasing here.
	vs := append([]float64(nil), r.Values()...)
	if !sort.Float64sAreSorted(vs) {
		t.Fatalf("systematic subsample of an increasing stream is not sorted: %v", vs)
	}
	// Percentiles stay within the observed range.
	if p := r.Percentile(0.5); p < 0 || p > 99 {
		t.Fatalf("p50 %v outside observed range", p)
	}
}

func TestWriteCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	err := WriteCSVFile(dir, "x.csv", []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n3,4\n" {
		t.Fatalf("unexpected CSV contents %q", data)
	}
}
