package campaign

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"

	"sesame/internal/linksim"
)

// benchSpec is the fixed grid every benchmark iteration sweeps:
// 2 seeds x 2 links x 2 faults = 8 full platform missions.
func benchSpec() Spec {
	return Spec{
		Name:      "bench",
		SeedFrom:  1,
		SeedCount: 2,
		HorizonS:  240,
		AreaSideM: 200,
		Links: []LinkVariant{
			{Name: "nominal"},
			{Name: "lossy-10", Profile: linksim.Profile{DropProb: 0.10}},
		},
		Faults: []FaultVariant{
			{Name: "none"},
			{Name: "spoof-30", SpoofAtS: 30},
		},
	}
}

// BenchmarkCampaignThroughput measures end-to-end sweep throughput —
// expansion, worker-pool execution, journaling and streamed
// aggregation — at different pool sizes. The headline metric is
// runs/sec; on a multi-core host the workers=NumCPU row scales with
// run-level parallelism, on a single-core host it exposes the pool's
// dispatch overhead instead.
func BenchmarkCampaignThroughput(b *testing.B) {
	pools := []int{1, 4, runtime.NumCPU()}
	for _, workers := range pools {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			spec := benchSpec()
			root := b.TempDir()
			runs := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dir, err := os.MkdirTemp(root, "sweep-")
				if err != nil {
					b.Fatal(err)
				}
				eng, err := New(spec, Options{OutDir: dir, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				sum, err := eng.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if !sum.Complete {
					b.Fatalf("sweep incomplete: %+v", sum)
				}
				runs += sum.Executed
			}
			b.StopTimer()
			b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/sec")
		})
	}
}
