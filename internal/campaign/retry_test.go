package campaign

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// flakyHook is a deterministic RunFaultHook: run 1 fails every
// attempt, run 2 fails only its first. Keyed purely on (index,
// attempt), so a resumed sweep re-injects identically.
func flakyHook(index, attempt int) error {
	switch {
	case index == 1:
		return fmt.Errorf("injected: run %d permanently down", index)
	case index == 2 && attempt == 1:
		return fmt.Errorf("injected: run %d flaky first attempt", index)
	}
	return nil
}

// TestRunRetriesQuarantine drives the run-level retry machinery: a
// permanently failing run must be quarantined as a status=failed row
// after exhausting its attempts, a transiently failing run must
// succeed on retry, and neither may abort the sweep or leak into the
// risk aggregates.
func TestRunRetriesQuarantine(t *testing.T) {
	dir := t.TempDir()
	var results []Result
	sum := runCampaign(t, tinySpec(), Options{
		OutDir: dir, Workers: 2, RunRetries: 2, RunFaultHook: flakyHook,
		OnResult: func(r Result) { results = append(results, r) },
	})
	if !sum.Complete || sum.Emitted != 8 {
		t.Fatalf("summary %+v, want complete with 8 emitted", sum)
	}

	q := results[1]
	if !q.Failed() || q.Attempts != 3 {
		t.Fatalf("run 1 = %+v, want status=failed after 3 attempts", q)
	}
	if !strings.Contains(q.Error, "permanently down") {
		t.Errorf("run 1 error %q does not carry the injected failure", q.Error)
	}
	if q.Digest != "" || q.Completed {
		t.Errorf("quarantined run carries mission results: %+v", q)
	}
	if q.Key != tinySpecKey(t, 1) {
		t.Errorf("quarantined run key %q, want the expansion's", q.Key)
	}

	r := results[2]
	if r.Failed() || r.Attempts != 2 {
		t.Fatalf("run 2 = %+v, want success on attempt 2", r)
	}
	if r.Digest == "" {
		t.Error("retried run lost its digest")
	}
	for _, i := range []int{0, 3, 4, 5, 6, 7} {
		if results[i].Failed() || results[i].Attempts != 0 {
			t.Errorf("untouched run %d = %+v, want clean single-attempt result", i, results[i])
		}
	}

	// The quarantined run is a row of the run log, not a sample of the
	// risk surface.
	agg, err := ReadAggregates(dir)
	if err != nil {
		t.Fatal(err)
	}
	folded := 0
	for _, g := range agg.Groups {
		folded += g.Runs
	}
	if folded != 7 {
		t.Errorf("aggregates folded %d runs, want 7 (failed run excluded)", folded)
	}
}

// tinySpecKey returns the expansion key of run index.
func tinySpecKey(t *testing.T, index int) string {
	t.Helper()
	spec := tinySpec()
	spec.Normalize()
	return spec.Expand()[index].Key()
}

// TestRunRetriesResumeByteIdentical kills a retried sweep mid-flight
// and resumes it: journaled quarantined rows must replay as-is (never
// re-retried) and the merged outputs must be byte-identical to the
// uninterrupted retried sweep.
func TestRunRetriesResumeByteIdentical(t *testing.T) {
	refDir := t.TempDir()
	runCampaign(t, tinySpec(), Options{
		OutDir: refDir, Workers: 2, RunRetries: 2, RunFaultHook: flakyHook,
	})
	ref := readOutputs(t, refDir)

	dir := t.TempDir()
	eng, err := New(tinySpec(), Options{
		OutDir: dir, Workers: 2, MaxRuns: 3, RunRetries: 2, RunFaultHook: flakyHook,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Complete || sum.Executed != 3 {
		t.Fatalf("partial summary %+v, want 3 executed, incomplete", sum)
	}
	sum = runCampaign(t, tinySpec(), Options{
		OutDir: dir, Workers: 2, Resume: true, RunRetries: 2, RunFaultHook: flakyHook,
	})
	if !sum.Complete || sum.Replayed != 3 {
		t.Fatalf("resumed summary %+v, want complete with 3 replayed", sum)
	}
	compareOutputs(t, ref, readOutputs(t, dir))
}

// TestRunFailFastWithoutRetries pins the legacy contract: with no
// retry budget the first run failure aborts the sweep.
func TestRunFailFastWithoutRetries(t *testing.T) {
	eng, err := New(tinySpec(), Options{
		OutDir: t.TempDir(), Workers: 1,
		RunFaultHook: func(index, attempt int) error {
			if index == 0 {
				return fmt.Errorf("injected: down")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "injected: down") {
		t.Fatalf("Run error = %v, want the injected failure to fail fast", err)
	}
}
