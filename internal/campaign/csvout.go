package campaign

// CSV plumbing shared by the campaign's streaming writers and the
// experiment reports' one-shot dumps. StreamCSV is the incremental
// path — one flushed row per completed run, so a killed sweep leaves a
// readable prefix on disk — and WriteCSVFile is the buffered
// convenience built on it, which internal/experiments delegates to so
// every CSV artefact in the repo is framed by one code path.

import (
	"encoding/csv"
	"os"
	"path/filepath"
)

// StreamCSV writes one CSV file incrementally: the header at creation,
// then one flushed row per WriteRow.
type StreamCSV struct {
	f *os.File
	w *csv.Writer
}

// CreateCSV creates (or truncates) dir/name and writes the header.
func CreateCSV(dir, name string, header []string) (*StreamCSV, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	s := &StreamCSV{f: f, w: csv.NewWriter(f)}
	if err := s.w.Write(header); err != nil {
		f.Close()
		return nil, err
	}
	s.w.Flush()
	if err := s.w.Error(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// WriteRow appends one row and flushes it through to the file, so the
// on-disk prefix is always a complete CSV.
func (s *StreamCSV) WriteRow(row []string) error {
	if err := s.w.Write(row); err != nil {
		return err
	}
	s.w.Flush()
	return s.w.Error()
}

// Close flushes and closes the file.
func (s *StreamCSV) Close() error {
	s.w.Flush()
	werr := s.w.Error()
	cerr := s.f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// WriteCSVFile writes a complete CSV (header + rows) to dir/name.
func WriteCSVFile(dir, name string, header []string, rows [][]string) error {
	s, err := CreateCSV(dir, name, header)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if err := s.WriteRow(row); err != nil {
			s.Close()
			return err
		}
	}
	return s.Close()
}
