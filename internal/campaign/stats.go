package campaign

// Shared statistics kernels for streamed campaign results. These are
// the one home for the quantile/ECDF math previously duplicated per
// experiment file (internal/experiments used to carry its own
// percentile helper); the campaign aggregator and the experiment
// reports now share this code path.

import (
	"math"
	"sort"
)

// Percentile returns the q-quantile of xs (copied and sorted), using
// the nearest-rank index int(q*(len-1)) — the exact convention the
// experiment tables have always reported. Empty input returns NaN.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// ECDFPoint is one step of an empirical CDF: P(X <= X_i) = P.
type ECDFPoint struct {
	X float64
	P float64
}

// ECDF returns the empirical distribution function of xs as one point
// per distinct value, in ascending order.
func ECDF(xs []float64) []ECDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	out := make([]ECDFPoint, 0, len(s))
	for i := 0; i < len(s); i++ {
		// Collapse ties onto the last occurrence so P is right-continuous.
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		out = append(out, ECDFPoint{X: s[i], P: float64(i+1) / n})
	}
	return out
}

// Reservoir accumulates a stream of samples in bounded memory with
// deterministic decimation: while under capacity every sample is kept;
// at capacity, every other retained sample is dropped and the keep
// stride doubles, so the survivors are a uniform systematic subsample
// of the stream. Feeding the same sequence always retains the same
// subset — no randomness, so campaign aggregates are reproducible.
type Reservoir struct {
	cap    int
	stride int // keep every stride-th sample
	phase  int // samples seen since the last kept one
	count  int // total samples offered
	xs     []float64
}

// DefaultReservoirCap bounds a reservoir when NewReservoir is given a
// non-positive capacity.
const DefaultReservoirCap = 4096

// NewReservoir returns an empty reservoir holding at most cap samples
// (cap <= 0 selects DefaultReservoirCap; cap is rounded up to 2).
func NewReservoir(cap int) *Reservoir {
	if cap <= 0 {
		cap = DefaultReservoirCap
	}
	if cap < 2 {
		cap = 2
	}
	return &Reservoir{cap: cap, stride: 1}
}

// Add offers one sample to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.count++
	r.phase++
	if r.phase < r.stride {
		return
	}
	r.phase = 0
	if len(r.xs) == r.cap {
		// Decimate: keep the even-indexed survivors, double the stride.
		keep := r.xs[:0]
		for i := 0; i < len(r.xs); i += 2 {
			keep = append(keep, r.xs[i])
		}
		r.xs = keep
		r.stride *= 2
	}
	r.xs = append(r.xs, x)
}

// Count returns how many samples were offered in total.
func (r *Reservoir) Count() int { return r.count }

// Values returns the retained samples in arrival order. The slice
// aliases the reservoir; callers must not mutate it.
func (r *Reservoir) Values() []float64 { return r.xs }

// Percentile returns the q-quantile over the retained samples (NaN
// when empty).
func (r *Reservoir) Percentile(q float64) float64 { return Percentile(r.xs, q) }

// ECDF returns the empirical CDF over the retained samples.
func (r *Reservoir) ECDF() []ECDFPoint { return ECDF(r.xs) }
