package campaign

// The streaming aggregator: consumes results strictly in run order,
// writes the per-run CSV and JSONL rows incrementally (no O(N) result
// buffering), and folds each result into bounded per-group accumulators
// (group = every grid axis except the seed). When the sweep completes
// it materializes the risk-curve artefacts the paper's single-scenario
// figures could not provide: mission-success probability and
// detection-latency percentiles/ECDFs per link/fault condition.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// Output file names inside a campaign directory.
const (
	RunsCSVName    = "runs.csv"
	RunsJSONLName  = "runs.jsonl"
	CurvesCSVName  = "risk_curves.csv"
	ECDFCSVName    = "detect_ecdf.csv"
	AggregatesName = "aggregates.json"
)

// runsHeader is the per-run CSV schema. Campaigns using the scenarios
// axis append a trailing "scenario" column; classic campaigns keep the
// legacy schema byte-for-byte.
var runsHeader = []string{
	"index", "key", "seed", "fleet", "cells", "link", "fault",
	"completed", "completion_s", "ticks", "decision", "availability",
	"safety_detect_s", "security_detect_s",
	"lost_link_events", "compromise_events",
	"drops", "world_drops", "db_retries",
	"link_offered", "link_delivered", "link_dropped", "digest",
	"status", "attempts",
}

// Aggregates is the aggregates.json schema: the campaign's risk
// surface, one GroupStats row per aggregation group.
type Aggregates struct {
	Name       string       `json:"name"`
	SpecDigest string       `json:"spec_digest"`
	TotalRuns  int          `json:"total_runs"`
	Groups     []GroupStats `json:"groups"`
}

// ReadAggregates loads dir/aggregates.json (written only when the
// sweep ran to completion).
func ReadAggregates(dir string) (Aggregates, error) {
	var a Aggregates
	data, err := os.ReadFile(filepath.Join(dir, AggregatesName))
	if err != nil {
		return a, err
	}
	err = json.Unmarshal(data, &a)
	return a, err
}

// GroupStats is one aggregation group's streamed statistics — a row of
// the risk surface.
type GroupStats struct {
	Group    string `json:"group"`
	Fleet    int    `json:"fleet"`
	Cells    int    `json:"cells"`
	Link     string `json:"link"`
	Fault    string `json:"fault"`
	Scenario string `json:"scenario,omitempty"`

	Runs             int     `json:"runs"`
	Completed        int     `json:"completed"`
	SuccessRate      float64 `json:"success_rate"`
	MeanCompletionS  float64 `json:"mean_completion_s"` // over completed runs, -1 if none
	MeanAvailability float64 `json:"mean_availability"`

	// Detection-latency distributions (seconds), with miss counts for
	// injected-but-never-detected faults. Percentiles are -1 when the
	// group has no samples.
	SafetyDetected   int     `json:"safety_detected"`
	SafetyMissed     int     `json:"safety_missed"`
	SafetyP50        float64 `json:"safety_p50"`
	SafetyP90        float64 `json:"safety_p90"`
	SafetyP95        float64 `json:"safety_p95"`
	SecurityDetected int     `json:"security_detected"`
	SecurityMissed   int     `json:"security_missed"`
	SecurityP50      float64 `json:"security_p50"`
	SecurityP90      float64 `json:"security_p90"`
	SecurityP95      float64 `json:"security_p95"`
}

// groupAgg is the bounded accumulator behind one GroupStats row.
type groupAgg struct {
	fleet, cells int
	link, fault  string
	scenario     string

	runs, completed int
	sumCompletion   float64
	sumAvail        float64

	safety, security     *Reservoir
	safetyMiss, secMiss  int
	batteryInj, spoofInj bool
}

// aggregator owns every incremental output writer plus the per-group
// accumulators.
type aggregator struct {
	dir  string
	spec *Spec

	runsCSV   *StreamCSV
	jsonlFile *os.File
	jsonl     *bufio.Writer

	groups     map[string]*groupAgg
	groupOrder []string

	row []string // reused CSV row buffer
}

func newAggregator(dir string, spec *Spec) (*aggregator, error) {
	header := runsHeader
	if len(spec.Scenarios) > 0 {
		header = append(append([]string(nil), runsHeader...), "scenario")
	}
	runsCSV, err := CreateCSV(dir, RunsCSVName, header)
	if err != nil {
		return nil, err
	}
	jf, err := os.Create(filepath.Join(dir, RunsJSONLName))
	if err != nil {
		runsCSV.Close()
		return nil, err
	}
	return &aggregator{
		dir: dir, spec: spec,
		runsCSV: runsCSV, jsonlFile: jf, jsonl: bufio.NewWriter(jf),
		groups: map[string]*groupAgg{},
		row:    make([]string, 0, len(runsHeader)),
	}, nil
}

func f2s(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
func i2s(v int) string     { return strconv.Itoa(v) }
func u2s(v uint64) string  { return strconv.FormatUint(v, 10) }

// emit streams one result (called in run order) into every output.
func (a *aggregator) emit(res Result) error {
	a.row = append(a.row[:0],
		i2s(res.Index), res.Key, strconv.FormatInt(res.Seed, 10),
		i2s(res.Fleet), i2s(res.Cells), res.Link, res.Fault,
		strconv.FormatBool(res.Completed), f2s(res.CompletionS),
		u2s(res.Ticks), res.Decision, f2s(res.Availability),
		f2s(res.SafetyDetectS), f2s(res.SecurityDetectS),
		i2s(res.LostLinkEvents), i2s(res.CompromiseEvents),
		u2s(res.Drops), u2s(res.WorldDrops), u2s(res.DBRetries),
		u2s(res.LinkOffered), u2s(res.LinkDelivered), u2s(res.LinkDropped),
		res.Digest, res.Status, i2s(res.Attempts),
	)
	if len(a.spec.Scenarios) > 0 {
		a.row = append(a.row, res.Scenario)
	}
	if err := a.runsCSV.WriteRow(a.row); err != nil {
		return err
	}
	data, err := json.Marshal(res)
	if err != nil {
		return err
	}
	if _, err := a.jsonl.Write(append(data, '\n')); err != nil {
		return err
	}
	// One flushed line per run keeps the JSONL prefix complete on kill.
	if err := a.jsonl.Flush(); err != nil {
		return err
	}
	a.fold(res)
	return nil
}

// fold accumulates the result into its group. Quarantined runs carry
// no mission outcome — they are rows of the run log, not samples of
// the risk surface — so they are excluded from every aggregate.
func (a *aggregator) fold(res Result) {
	if res.Failed() {
		return
	}
	key := fmt.Sprintf("f%d-c%d-%s-%s", res.Fleet, res.Cells, res.Link, res.Fault)
	if res.Scenario != "" {
		key += "-" + res.Scenario
	}
	g, ok := a.groups[key]
	if !ok {
		g = &groupAgg{
			fleet: res.Fleet, cells: res.Cells, link: res.Link, fault: res.Fault,
			scenario: res.Scenario,
			safety:   NewReservoir(0), security: NewReservoir(0),
		}
		for _, f := range a.spec.Faults {
			if f.Name == res.Fault {
				g.batteryInj = f.BatteryAtS > 0
				g.spoofInj = f.SpoofAtS > 0
			}
		}
		a.groups[key] = g
		a.groupOrder = append(a.groupOrder, key)
	}
	g.runs++
	g.sumAvail += res.Availability
	if res.Completed {
		g.completed++
		g.sumCompletion += res.CompletionS
	}
	if g.batteryInj {
		if res.SafetyDetectS >= 0 {
			g.safety.Add(res.SafetyDetectS)
		} else {
			g.safetyMiss++
		}
	}
	if g.spoofInj {
		if res.SecurityDetectS >= 0 {
			g.security.Add(res.SecurityDetectS)
		} else {
			g.secMiss++
		}
	}
}

// pOr returns the reservoir percentile, -1 when empty (JSON-safe).
func pOr(r *Reservoir, q float64) float64 {
	if r.Count() == 0 {
		return -1
	}
	return r.Percentile(q)
}

// stats materializes one group row.
func (g *groupAgg) stats(key string) GroupStats {
	s := GroupStats{
		Group: key, Fleet: g.fleet, Cells: g.cells, Link: g.link, Fault: g.fault,
		Scenario: g.scenario,
		Runs:     g.runs, Completed: g.completed,
		MeanCompletionS: -1,
		SafetyDetected:  g.safety.Count(), SafetyMissed: g.safetyMiss,
		SafetyP50: pOr(g.safety, 0.50), SafetyP90: pOr(g.safety, 0.90), SafetyP95: pOr(g.safety, 0.95),
		SecurityDetected: g.security.Count(), SecurityMissed: g.secMiss,
		SecurityP50: pOr(g.security, 0.50), SecurityP90: pOr(g.security, 0.90), SecurityP95: pOr(g.security, 0.95),
	}
	if g.runs > 0 {
		s.SuccessRate = float64(g.completed) / float64(g.runs)
		s.MeanAvailability = g.sumAvail / float64(g.runs)
	}
	if g.completed > 0 {
		s.MeanCompletionS = g.sumCompletion / float64(g.completed)
	}
	return s
}

// finalize writes the aggregate artefacts: risk_curves.csv,
// detect_ecdf.csv and aggregates.json. Group order is first-seen order
// over the in-order result stream, so it is deterministic.
func (a *aggregator) finalize() error {
	curvesHeader := []string{
		"group", "fleet", "cells", "link", "fault", "runs",
		"success_rate", "mean_completion_s", "mean_availability",
		"safety_detected", "safety_missed", "safety_p50", "safety_p90", "safety_p95",
		"security_detected", "security_missed", "security_p50", "security_p90", "security_p95",
	}
	if len(a.spec.Scenarios) > 0 {
		curvesHeader = append(curvesHeader, "scenario")
	}
	curves, err := CreateCSV(a.dir, CurvesCSVName, curvesHeader)
	if err != nil {
		return err
	}
	ecdf, err := CreateCSV(a.dir, ECDFCSVName, []string{"group", "metric", "latency_s", "p"})
	if err != nil {
		curves.Close()
		return err
	}
	all := Aggregates{
		Name:       a.spec.Name,
		SpecDigest: a.spec.Digest(),
		TotalRuns:  a.spec.Total(),
		Groups:     make([]GroupStats, 0, len(a.groupOrder)),
	}

	for _, key := range a.groupOrder {
		g := a.groups[key]
		s := g.stats(key)
		all.Groups = append(all.Groups, s)
		row := []string{
			s.Group, i2s(s.Fleet), i2s(s.Cells), s.Link, s.Fault, i2s(s.Runs),
			f2s(s.SuccessRate), f2s(s.MeanCompletionS), f2s(s.MeanAvailability),
			i2s(s.SafetyDetected), i2s(s.SafetyMissed), f2s(s.SafetyP50), f2s(s.SafetyP90), f2s(s.SafetyP95),
			i2s(s.SecurityDetected), i2s(s.SecurityMissed), f2s(s.SecurityP50), f2s(s.SecurityP90), f2s(s.SecurityP95),
		}
		if len(a.spec.Scenarios) > 0 {
			row = append(row, s.Scenario)
		}
		err := curves.WriteRow(row)
		if err != nil {
			curves.Close()
			ecdf.Close()
			return err
		}
		// Two fixed metrics, emitted in a fixed order for determinism.
		for _, m := range []struct {
			name string
			r    *Reservoir
		}{{"safety", g.safety}, {"security", g.security}} {
			for _, pt := range m.r.ECDF() {
				if err := ecdf.WriteRow([]string{s.Group, m.name, f2s(pt.X), f2s(pt.P)}); err != nil {
					curves.Close()
					ecdf.Close()
					return err
				}
			}
		}
	}
	if err := curves.Close(); err != nil {
		ecdf.Close()
		return err
	}
	if err := ecdf.Close(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(a.dir, AggregatesName), append(data, '\n'), 0o644)
}

// close flushes and closes the incremental writers; when the sweep
// completed it also writes the aggregate artefacts.
func (a *aggregator) close(complete bool) error {
	var firstErr error
	if err := a.runsCSV.Close(); err != nil {
		firstErr = err
	}
	if err := a.jsonl.Flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := a.jsonlFile.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if complete && firstErr == nil {
		firstErr = a.finalize()
	}
	return firstErr
}
