package campaign

// The resume machinery: a campaign directory holds a human-readable
// manifest.json plus journal.rec, an append-only log of completed-run
// results framed exactly like a flight recording (flightrec.AppendFrame
// / flightrec.DecodeRecord — uvarint length ‖ type ‖ payload ‖ crc32).
// A killed sweep resumes by replaying the journal: runs already logged
// are served from it, everything else executes. The journal tolerates
// a torn tail (process killed mid-append) by truncating back to the
// last intact record before appending again.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"sesame/internal/flightrec"
)

// Journal record types. The numbering is private to the journal — it
// shares flightrec's framing, not its record vocabulary.
const (
	journalTypeManifest byte = 1
	journalTypeRun      byte = 2
)

// journalMagic starts every campaign journal file.
const journalMagic = "SESACMPJ"

// JournalName is the journal's file name inside a campaign directory.
const JournalName = "journal.rec"

// ManifestName is the manifest's file name inside a campaign directory.
const ManifestName = "manifest.json"

// Manifest identifies a campaign on disk. It is both the first journal
// record and the pretty-printed manifest.json, so either file alone
// names the sweep it belongs to.
type Manifest struct {
	Name       string `json:"name"`
	SpecDigest string `json:"spec_digest"`
	TotalRuns  int    `json:"total_runs"`
	Spec       Spec   `json:"spec"`
}

// ReadResults replays dir's journal and returns every intact completed
// run keyed by run index — the read side of the resume machinery, also
// used to cross-check a standalone RerunOne against the recorded digest.
func ReadResults(dir string) (map[int]Result, error) {
	_, completed, _, err := readJournal(dir)
	if err != nil {
		return nil, err
	}
	return completed, nil
}

// errNoJournal distinguishes "fresh directory" from real I/O errors.
var errNoJournal = errors.New("campaign: no journal")

// journal is the append handle for completed-run records.
type journal struct {
	f         *os.File
	buf       []byte
	appended  int
	syncEvery int
}

// writeManifest writes manifest.json. The content is a pure function
// of the spec (no timestamps, no host state), so rewriting it on
// resume is byte-identical.
func writeManifest(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), append(data, '\n'), 0o644)
}

// readJournal scans dir's journal, returning the manifest, every
// intact run result keyed by run index, and the byte offset of the
// last intact record (the torn-tail truncation point).
func readJournal(dir string) (Manifest, map[int]Result, int64, error) {
	var m Manifest
	buf, err := os.ReadFile(filepath.Join(dir, JournalName))
	if errors.Is(err, os.ErrNotExist) {
		return m, nil, 0, errNoJournal
	}
	if err != nil {
		return m, nil, 0, err
	}
	if len(buf) < len(journalMagic) || string(buf[:len(journalMagic)]) != journalMagic {
		return m, nil, 0, fmt.Errorf("campaign: %s is not a campaign journal", dir)
	}
	off := len(journalMagic)
	completed := map[int]Result{}
	haveManifest := false
	for off < len(buf) {
		rec, n, err := flightrec.DecodeRecord(buf[off:])
		if err != nil {
			// Torn tail: the process died mid-append. Everything before
			// it is intact; the writer truncates back to here.
			break
		}
		switch rec.Type {
		case journalTypeManifest:
			if err := json.Unmarshal(rec.Payload, &m); err != nil {
				return m, nil, 0, fmt.Errorf("campaign: journal manifest: %w", err)
			}
			haveManifest = true
		case journalTypeRun:
			var res Result
			if err := json.Unmarshal(rec.Payload, &res); err != nil {
				return m, nil, 0, fmt.Errorf("campaign: journal run record: %w", err)
			}
			completed[res.Index] = res
		}
		off += n
	}
	if !haveManifest {
		return m, nil, 0, fmt.Errorf("campaign: journal in %s has no manifest record", dir)
	}
	return m, completed, int64(off), nil
}

// createJournal starts a fresh journal with the manifest record.
func createJournal(dir string, m Manifest, syncEvery int) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, JournalName),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	j := &journal{f: f, syncEvery: syncEvery}
	payload, err := json.Marshal(m)
	if err != nil {
		f.Close()
		return nil, err
	}
	j.buf = append(j.buf[:0], journalMagic...)
	j.buf = flightrec.AppendFrame(j.buf, journalTypeManifest, payload)
	if _, err := f.Write(j.buf); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// appendJournal reopens an existing journal for appending, truncated
// back to intactLen to drop any torn tail.
func appendJournal(dir string, intactLen int64, syncEvery int) (*journal, error) {
	path := filepath.Join(dir, JournalName)
	if err := os.Truncate(path, intactLen); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f, syncEvery: syncEvery}, nil
}

// record appends one completed run, syncing every syncEvery appends so
// a kill loses at most that many finished runs.
func (j *journal) record(res Result) error {
	payload, err := json.Marshal(res)
	if err != nil {
		return err
	}
	j.buf = flightrec.AppendFrame(j.buf[:0], journalTypeRun, payload)
	if _, err := j.f.Write(j.buf); err != nil {
		return err
	}
	j.appended++
	if j.syncEvery > 0 && j.appended%j.syncEvery == 0 {
		return j.f.Sync()
	}
	return nil
}

// close syncs and closes the journal; extra calls are no-ops.
func (j *journal) close() error {
	if j.f == nil {
		return nil
	}
	serr := j.f.Sync()
	cerr := j.f.Close()
	j.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}
