// Package campaign is the Monte Carlo campaign engine: it expands a
// declarative sweep specification (seed range × parameter grid over
// link-fault profiles, fault/attack timing, fleet size and scheduler
// regime) into independent seeded runs, executes them on a bounded
// worker pool with run-level parallelism, and streams compact per-run
// results into incremental CSV/JSON outputs plus risk-curve
// aggregates — turning the paper's single-scenario point figures into
// surfaces (mission-success probability vs link loss, detection-latency
// distributions vs fault timing).
//
// Every run is bit-reproducible from its (seed, params) tuple: the
// engine journals each completed run (flightrec framing), a killed
// sweep resumes by skipping journaled runs, and the merged outputs of
// an interrupted+resumed sweep are byte-identical to an uninterrupted
// one.
package campaign

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"sesame/internal/geo"
	"sesame/internal/linksim"
	"sesame/internal/scenario"
)

// defaultOrigin anchors every campaign's mission area (Cyprus, where
// the paper's field trials flew).
var defaultOrigin = geo.LatLng{Lat: 35.1856, Lng: 33.3823}

// LinkVariant is one point on the link-condition axis: a linksim
// impairment profile plus an optional hard outage window on one UAV.
type LinkVariant struct {
	Name    string          `json:"name"`
	Profile linksim.Profile `json:"profile"`
	// OutageUAV loses its link entirely in [OutageStartS,
	// OutageStartS+OutageDurS) after mission start (default "u2" when a
	// duration is set).
	OutageUAV    string  `json:"outage_uav,omitempty"`
	OutageStartS float64 `json:"outage_start_s,omitempty"`
	OutageDurS   float64 `json:"outage_dur_s,omitempty"`
}

// FaultVariant is one point on the fault/attack-timing axis: the
// paper's §V-A battery collapse and/or §V-C GPS spoofing attack at
// configurable mission times (0 = not injected).
type FaultVariant struct {
	Name string `json:"name"`
	// BatteryAtS injects the battery collapse on BatteryUAV (default
	// "u1") that many seconds after mission start.
	BatteryAtS float64 `json:"battery_at_s,omitempty"`
	BatteryUAV string  `json:"battery_uav,omitempty"`
	// SpoofAtS starts the GPS spoofing attack on SpoofUAV (default
	// "u2") that many seconds after mission start.
	SpoofAtS float64 `json:"spoof_at_s,omitempty"`
	SpoofUAV string  `json:"spoof_uav,omitempty"`
}

// Spec is a declarative sweep: the cross product of the seed range and
// every grid axis. Zero-valued axes default to a single nominal point,
// so the minimal useful spec is just a seed count.
type Spec struct {
	Name string `json:"name"`
	// SeedFrom..SeedFrom+SeedCount-1 are the world seeds swept.
	SeedFrom  int64 `json:"seed_from"`
	SeedCount int   `json:"seed_count"`
	// HorizonS bounds each run's mission time (default 900).
	HorizonS float64 `json:"horizon_s"`
	// AreaSideM is the survey square's side (default 350).
	AreaSideM float64 `json:"area_side_m"`
	// Persons scatters that many detection targets in the area (0 =
	// coverage-only mission, the fast default).
	Persons int `json:"persons,omitempty"`
	// Fleets, Cells, Links and Faults are the grid axes (defaults:
	// [3], [0], one clean link, one fault-free variant).
	Fleets []int          `json:"fleets,omitempty"`
	Cells  []int          `json:"cells,omitempty"`
	Links  []LinkVariant  `json:"links,omitempty"`
	Faults []FaultVariant `json:"faults,omitempty"`
	// Scenarios sweeps generated scenario archetypes
	// (internal/scenario: maritime_sar, urban_canyon, multi_site)
	// instead of the classic square-area mission. Each run builds its
	// world from scenario.GenerateN(seed, archetype, fleet), so the
	// scenario carries its own wind, visibility, link profiles and
	// fault timeline — the Links/Faults axes (and Persons) must stay
	// at their defaults when this axis is used. Empty keeps the classic
	// mission and the spec's serialized bytes unchanged.
	Scenarios []string `json:"scenarios,omitempty"`
}

// Run is one expanded grid point: the (seed, params) tuple that fully
// determines a simulation, bit for bit.
type Run struct {
	Index int          `json:"index"`
	Seed  int64        `json:"seed"`
	Fleet int          `json:"fleet"`
	Cells int          `json:"cells"`
	Link  LinkVariant  `json:"link"`
	Fault FaultVariant `json:"fault"`
	// Scenario is the generated-archetype point of the scenarios axis
	// ("" on the classic mission path).
	Scenario string `json:"scenario,omitempty"`
}

// Key is the run's stable identity within its campaign, derived only
// from the (seed, params) tuple.
func (r Run) Key() string {
	key := fmt.Sprintf("s%d-f%d-c%d-%s-%s", r.Seed, r.Fleet, r.Cells, r.Link.Name, r.Fault.Name)
	if r.Scenario != "" {
		key += "-" + r.Scenario
	}
	return key
}

// GroupKey identifies the run's aggregation group: every axis except
// the seed. Risk curves are computed per group over the seed sweep.
func (r Run) GroupKey() string {
	key := fmt.Sprintf("f%d-c%d-%s-%s", r.Fleet, r.Cells, r.Link.Name, r.Fault.Name)
	if r.Scenario != "" {
		key += "-" + r.Scenario
	}
	return key
}

// variantName constrains axis names so run keys and CSV cells stay
// unambiguous.
var variantName = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// Normalize fills every defaulted field in place.
func (s *Spec) Normalize() {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if s.SeedCount <= 0 {
		s.SeedCount = 1
	}
	if s.HorizonS <= 0 {
		s.HorizonS = 900
	}
	if s.AreaSideM <= 0 {
		s.AreaSideM = 350
	}
	if len(s.Fleets) == 0 {
		s.Fleets = []int{3}
	}
	if len(s.Cells) == 0 {
		s.Cells = []int{0}
	}
	if len(s.Links) == 0 {
		s.Links = []LinkVariant{{Name: "nominal"}}
	}
	if len(s.Faults) == 0 {
		s.Faults = []FaultVariant{{Name: "none"}}
	}
	for i := range s.Links {
		if s.Links[i].OutageDurS > 0 && s.Links[i].OutageUAV == "" {
			s.Links[i].OutageUAV = "u2"
		}
	}
	for i := range s.Faults {
		if s.Faults[i].BatteryAtS > 0 && s.Faults[i].BatteryUAV == "" {
			s.Faults[i].BatteryUAV = "u1"
		}
		if s.Faults[i].SpoofAtS > 0 && s.Faults[i].SpoofUAV == "" {
			s.Faults[i].SpoofUAV = "u2"
		}
	}
}

// fleetHasUAV reports whether a fleet of n vehicles (u1..uN) contains
// the named UAV.
func fleetHasUAV(n int, uav string) bool {
	idx, ok := strings.CutPrefix(uav, "u")
	if !ok {
		return false
	}
	k, err := strconv.Atoi(idx)
	return err == nil && k >= 1 && k <= n
}

// Validate checks a normalized spec. Fault and outage targets must
// exist in every swept fleet size, so a run's behaviour never silently
// depends on a target being absent.
func (s *Spec) Validate() error {
	if !variantName.MatchString(s.Name) {
		return fmt.Errorf("campaign: name %q must match %s", s.Name, variantName)
	}
	minFleet := s.Fleets[0]
	for _, f := range s.Fleets {
		if f < 1 {
			return fmt.Errorf("campaign: fleet size %d: need at least one UAV", f)
		}
		if f < minFleet {
			minFleet = f
		}
	}
	for _, c := range s.Cells {
		if c < 0 {
			return fmt.Errorf("campaign: cells %d: must be >= 0 (0 = auto)", c)
		}
	}
	seen := map[string]bool{}
	for _, l := range s.Links {
		if !variantName.MatchString(l.Name) {
			return fmt.Errorf("campaign: link variant name %q must match %s", l.Name, variantName)
		}
		if seen["l:"+l.Name] {
			return fmt.Errorf("campaign: duplicate link variant %q", l.Name)
		}
		seen["l:"+l.Name] = true
		if l.OutageDurS > 0 && !fleetHasUAV(minFleet, l.OutageUAV) {
			return fmt.Errorf("campaign: link %q outage targets %q, absent from fleet size %d", l.Name, l.OutageUAV, minFleet)
		}
		if l.OutageDurS < 0 || l.OutageStartS < 0 {
			return fmt.Errorf("campaign: link %q: negative outage window", l.Name)
		}
	}
	for _, f := range s.Faults {
		if !variantName.MatchString(f.Name) {
			return fmt.Errorf("campaign: fault variant name %q must match %s", f.Name, variantName)
		}
		if seen["f:"+f.Name] {
			return fmt.Errorf("campaign: duplicate fault variant %q", f.Name)
		}
		seen["f:"+f.Name] = true
		if f.BatteryAtS > 0 && !fleetHasUAV(minFleet, f.BatteryUAV) {
			return fmt.Errorf("campaign: fault %q battery collapse targets %q, absent from fleet size %d", f.Name, f.BatteryUAV, minFleet)
		}
		if f.SpoofAtS > 0 && !fleetHasUAV(minFleet, f.SpoofUAV) {
			return fmt.Errorf("campaign: fault %q spoofing targets %q, absent from fleet size %d", f.Name, f.SpoofUAV, minFleet)
		}
		if f.BatteryAtS < 0 || f.SpoofAtS < 0 {
			return fmt.Errorf("campaign: fault %q: negative injection time", f.Name)
		}
	}
	if len(s.Scenarios) > 0 {
		for _, name := range s.Scenarios {
			if !scenario.KnownArchetype(name) {
				return fmt.Errorf("campaign: unknown scenario archetype %q (known: %s)",
					name, strings.Join(scenario.Archetypes(), ", "))
			}
			if seen["s:"+name] {
				return fmt.Errorf("campaign: duplicate scenario archetype %q", name)
			}
			seen["s:"+name] = true
		}
		// A generated scenario carries its own link profiles, fault
		// timeline and detection targets; crossing it with the classic
		// axes would silently ignore them.
		if len(s.Links) != 1 || s.Links[0] != (LinkVariant{Name: "nominal"}) ||
			len(s.Faults) != 1 || s.Faults[0] != (FaultVariant{Name: "none"}) {
			return errors.New("campaign: the scenarios axis replaces the links/faults axes (scenarios embed their own link and fault models)")
		}
		if s.Persons > 0 {
			return errors.New("campaign: the scenarios axis replaces persons (scenarios scatter their own detection targets)")
		}
	}
	return nil
}

// Digest fingerprints the normalized spec; the journal embeds it so a
// resume against an edited spec fails fast instead of merging
// incompatible result sets.
func (s *Spec) Digest() string {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; Marshal cannot fail on it.
		panic(err)
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(data))
}

// scenarioAxis returns the scenarios axis with the classic mission as
// the single point when the axis is unused, so Expand and Total treat
// both paths uniformly without changing legacy expansion order.
func (s *Spec) scenarioAxis() []string {
	if len(s.Scenarios) == 0 {
		return []string{""}
	}
	return s.Scenarios
}

// Total returns the number of runs the spec expands to.
func (s *Spec) Total() int {
	return s.SeedCount * len(s.Fleets) * len(s.Cells) * len(s.Links) * len(s.Faults) * len(s.scenarioAxis())
}

// Expand enumerates every grid point in deterministic order: seed
// outermost, then fleet, cells, link, fault, scenario. Run indexes are
// the resume journal's identity, so this order is part of the
// campaign's on-disk contract.
func (s *Spec) Expand() []Run {
	runs := make([]Run, 0, s.Total())
	for si := 0; si < s.SeedCount; si++ {
		for _, fleet := range s.Fleets {
			for _, cells := range s.Cells {
				for _, link := range s.Links {
					for _, fault := range s.Faults {
						for _, scen := range s.scenarioAxis() {
							runs = append(runs, Run{
								Index:    len(runs),
								Seed:     s.SeedFrom + int64(si),
								Fleet:    fleet,
								Cells:    cells,
								Link:     link,
								Fault:    fault,
								Scenario: scen,
							})
						}
					}
				}
			}
		}
	}
	return runs
}
