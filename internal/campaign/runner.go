package campaign

// One campaign run: build the platform exactly as the (seed, params)
// tuple dictates, tick to the horizon, and reduce the mission to a
// compact Result. Construction is a pure function of the tuple — the
// same contract that makes flightrec resume work — so any journaled
// run re-executes bit-identically for triage (RerunOne).

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"sesame/internal/detection"
	"sesame/internal/eddi"
	"sesame/internal/geo"
	"sesame/internal/linksim"
	"sesame/internal/platform"
	"sesame/internal/scenario"
	"sesame/internal/uavsim"
)

// Result is the compact per-run record streamed into the aggregator
// and journaled for resume. Latencies of -1 mean "not applicable or
// never detected"; the aggregator separates the two via the fault spec.
type Result struct {
	Index int    `json:"index"`
	Key   string `json:"key"`
	Seed  int64  `json:"seed"`
	Fleet int    `json:"fleet"`
	Cells int    `json:"cells"`
	Link  string `json:"link"`
	Fault string `json:"fault"`
	// Scenario is the generated archetype this run flew ("" for the
	// classic mission, keeping legacy journals and JSONL byte-stable).
	Scenario string `json:"scenario,omitempty"`

	Completed    bool    `json:"completed"`
	CompletionS  float64 `json:"completion_s"`
	Ticks        uint64  `json:"ticks"`
	Decision     string  `json:"decision"`
	Availability float64 `json:"availability"`

	// SafetyDetectS / SecurityDetectS are the delays from fault
	// injection to the first matching EDDI finding on the injected UAV.
	SafetyDetectS   float64 `json:"safety_detect_s"`
	SecurityDetectS float64 `json:"security_detect_s"`

	LostLinkEvents   int `json:"lost_link_events"`
	CompromiseEvents int `json:"compromise_events"`

	Drops      uint64 `json:"drops"`
	WorldDrops uint64 `json:"world_drops"`
	DBRetries  uint64 `json:"db_retries"`

	LinkOffered   uint64 `json:"link_offered"`
	LinkDelivered uint64 `json:"link_delivered"`
	LinkDropped   uint64 `json:"link_dropped"`

	// Digest fingerprints the externally observable final state; a
	// standalone re-execution from (seed, params) must reproduce it.
	Digest string `json:"digest"`

	// Status is "" for a normally executed run and "failed" for a run
	// quarantined after exhausting its retry budget (Options.RunRetries).
	// Attempts counts executions when more than one was needed; Error
	// holds the final attempt's failure. All three are omitempty so
	// campaigns without failures serialize byte-identically to before.
	Status   string `json:"status,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Failed reports whether the run was quarantined rather than executed.
func (r Result) Failed() bool { return r.Status == "failed" }

// scratch is per-worker reusable state: everything a run needs that
// does not depend on the seed. Reusing it amortizes per-run setup
// across the thousands of runs a worker executes.
type scratch struct {
	ids   map[int][]string        // fleet size -> cached u1..uN
	areas map[float64]geo.Polygon // area side -> cached survey square
	blob  []byte                  // digest serialization buffer
}

func newScratch() *scratch {
	return &scratch{ids: map[int][]string{}, areas: map[float64]geo.Polygon{}}
}

// fleetIDs returns the cached u1..uN slice for a fleet size.
func (sc *scratch) fleetIDs(n int) []string {
	if ids, ok := sc.ids[n]; ok {
		return ids
	}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("u%d", i+1)
	}
	sc.ids[n] = ids
	return ids
}

// area returns the cached survey square of the given side, anchored
// like every experiment's mission area.
func (sc *scratch) area(side float64) geo.Polygon {
	if a, ok := sc.areas[side]; ok {
		return a
	}
	p := geo.Destination(defaultOrigin, 45, 80)
	b := geo.Destination(p, 90, side)
	c := geo.Destination(b, 0, side)
	d := geo.Destination(p, 0, side)
	area := geo.Polygon{p, b, c, d}
	sc.areas[side] = area
	return area
}

// executeRun flies one grid point to its horizon and reduces it to a
// Result. The platform is forced onto the serial scheduler path
// (Workers=1): campaign parallelism is run-level, and the scheduler is
// bit-identical across pool sizes anyway.
func executeRun(spec *Spec, run Run, sc *scratch) (Result, error) {
	res := Result{
		Index: run.Index, Key: run.Key(), Seed: run.Seed,
		Fleet: run.Fleet, Cells: run.Cells,
		Link: run.Link.Name, Fault: run.Fault.Name,
		Scenario:      run.Scenario,
		SafetyDetectS: -1, SecurityDetectS: -1,
	}
	if run.Scenario != "" {
		return executeScenarioRun(spec, run, sc, res)
	}

	w := uavsim.NewWorld(defaultOrigin, run.Seed)
	ids := sc.fleetIDs(run.Fleet)
	for _, id := range ids {
		if _, err := w.AddUAV(uavsim.UAVConfig{ID: id, Home: defaultOrigin, CruiseSpeedMS: 12}); err != nil {
			return res, err
		}
	}
	area := sc.area(spec.AreaSideM)

	var scene *detection.Scene
	if spec.Persons > 0 {
		var err error
		scene, err = detection.NewRandomScene(area, spec.Persons, 0.2, w.Clock.Stream("scene"))
		if err != nil {
			return res, err
		}
	}

	cfg := platform.DefaultConfig()
	cfg.Workers = 1
	cfg.Cells = run.Cells
	p, err := platform.New(w, scene, cfg)
	if err != nil {
		return res, err
	}
	defer p.Close()

	layer := linksim.New(w.Clock, run.Link.Name)
	layer.AttachBus(w.Bus)
	layer.AttachBroker(p.Broker, func(topic string) string {
		if uav, ok := strings.CutPrefix(topic, "alerts/ids/"); ok {
			return uav
		}
		return ""
	})
	for _, id := range ids {
		layer.Link(id).SetProfile(run.Link.Profile)
	}

	start := w.Clock.Now()
	if err := p.StartMission(area); err != nil {
		return res, err
	}
	if run.Link.OutageDurS > 0 {
		from := start + run.Link.OutageStartS
		layer.Link(run.Link.OutageUAV).AddOutage(from, from+run.Link.OutageDurS)
	}
	if run.Fault.BatteryAtS > 0 {
		at := start + run.Fault.BatteryAtS
		if err := w.ScheduleFault(uavsim.BatteryCollapseFault(at, run.Fault.BatteryUAV, 70, 40)); err != nil {
			return res, err
		}
	}
	if run.Fault.SpoofAtS > 0 {
		at := start + run.Fault.SpoofAtS
		if err := w.ScheduleFault(uavsim.GPSSpoofFault(at, run.Fault.SpoofUAV, 135, 3)); err != nil {
			return res, err
		}
	}

	end := start + spec.HorizonS
	for w.Clock.Now() < end {
		if err := p.Tick(); err != nil {
			return res, err
		}
		if p.MissionComplete() {
			res.Completed = true
			break
		}
	}
	res.CompletionS = w.Clock.Now() - start
	res.Ticks = p.Ticks()
	res.Decision = p.Decision().String()
	if res.Availability, err = p.Availability(); err != nil {
		return res, err
	}
	// The platform's availability mean is summed in map-iteration order,
	// so re-executions can differ in the last ULP. Record it at the same
	// 12-decimal precision the mission digest hashes, keeping journal and
	// output bytes reproducible across kill/resume.
	res.Availability = math.Round(res.Availability*1e12) / 1e12

	status := p.Status()
	res.Drops = status.Drops.Total()
	res.WorldDrops = status.WorldDrops.TelemetryPublish
	res.DBRetries = status.DBRetries.Scheduled
	for _, s := range layer.Stats() {
		res.LinkOffered += s.Offered
		res.LinkDelivered += s.Delivered
		res.LinkDropped += s.Dropped
	}

	history := p.Coordinator.History("")
	res.scanHistory(history, run, start)
	res.Digest = missionDigest(sc, status, p.Decision().String(), history, res.Availability)
	return res, nil
}

// executeScenarioRun flies one scenarios-axis grid point: the world,
// fleet, link profiles and fault timeline all come from the generated
// archetype — the (seed, archetype, fleet, cells) tuple fully
// determines the run, so the bit-reproducibility contract is the same
// as the classic path's.
func executeScenarioRun(spec *Spec, run Run, sc *scratch, res Result) (Result, error) {
	gen, err := scenario.GenerateN(run.Seed, run.Scenario, run.Fleet)
	if err != nil {
		return res, err
	}
	cfg := platform.DefaultConfig()
	cfg.Workers = 1
	cfg.Cells = run.Cells
	sr, err := platform.LaunchScenario(gen, cfg)
	if err != nil {
		return res, err
	}
	defer sr.Platform.Close()
	p, w := sr.Platform, sr.World

	start := w.Clock.Now()
	end := start + gen.HorizonS
	for w.Clock.Now() < end {
		if err := p.Tick(); err != nil {
			return res, err
		}
		if p.MissionComplete() {
			res.Completed = true
			break
		}
	}
	res.CompletionS = w.Clock.Now() - start
	res.Ticks = p.Ticks()
	res.Decision = p.Decision().String()
	if res.Availability, err = p.Availability(); err != nil {
		return res, err
	}
	res.Availability = math.Round(res.Availability*1e12) / 1e12

	status := p.Status()
	res.Drops = status.Drops.Total()
	res.WorldDrops = status.WorldDrops.TelemetryPublish
	res.DBRetries = status.DBRetries.Scheduled
	if sr.Links != nil {
		for _, s := range sr.Links.Stats() {
			res.LinkOffered += s.Offered
			res.LinkDelivered += s.Delivered
			res.LinkDropped += s.Dropped
		}
	}

	history := p.Coordinator.History("")
	res.scanHistory(history, run, start)
	res.Digest = missionDigest(sc, status, p.Decision().String(), history, res.Availability)
	return res, nil
}

// scanHistory extracts detection latencies and contingency counts from
// the EDDI event stream.
func (res *Result) scanHistory(history []eddi.Event, run Run, start float64) {
	batAt := start + run.Fault.BatteryAtS
	spoofAt := start + run.Fault.SpoofAtS
	for _, ev := range history {
		if strings.HasPrefix(ev.Summary, "lost link:") {
			res.LostLinkEvents++
		}
		if strings.HasPrefix(ev.Summary, "compromise:") {
			res.CompromiseEvents++
		}
		if run.Fault.BatteryAtS > 0 && res.SafetyDetectS < 0 &&
			ev.Kind == eddi.KindSafety && ev.UAV == run.Fault.BatteryUAV && ev.Time >= batAt {
			res.SafetyDetectS = ev.Time - batAt
		}
		if run.Fault.SpoofAtS > 0 && res.SecurityDetectS < 0 &&
			ev.Kind == eddi.KindSecurity && ev.UAV == run.Fault.SpoofUAV && ev.Time >= spoofAt {
			res.SecurityDetectS = ev.Time - spoofAt
		}
	}
}

// missionDigest fingerprints the run's externally observable final
// state — fleet status, mission decision, full EDDI history and the
// availability number — reusing the worker's serialization buffer.
func missionDigest(sc *scratch, status platform.Status, decision string, history []eddi.Event, avail float64) string {
	blob := struct {
		Status   platform.Status
		Decision string
		History  []eddi.Event
	}{status, decision, history}
	data, err := json.Marshal(blob)
	if err != nil {
		// Status and events are plain data; Marshal cannot fail.
		panic(err)
	}
	sc.blob = append(sc.blob[:0], data...)
	sc.blob = append(sc.blob, fmt.Sprintf("avail=%.12f", avail)...)
	return fmt.Sprintf("%x", sha256.Sum256(sc.blob))
}

// RerunOne re-executes a single grid point standalone from its (seed,
// params) tuple — the triage path: any journaled run can be reproduced
// bit-identically without the rest of the sweep.
func RerunOne(spec Spec, index int) (Result, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	runs := spec.Expand()
	if index < 0 || index >= len(runs) {
		return Result{}, fmt.Errorf("campaign: run index %d outside [0,%d)", index, len(runs))
	}
	return executeRun(&spec, runs[index], newScratch())
}
