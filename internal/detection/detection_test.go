package detection

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sesame/internal/geo"
)

var origin = geo.LatLng{Lat: 35.1856, Lng: 33.3823}

func squareArea(side float64) geo.Polygon {
	a := origin
	b := geo.Destination(a, 90, side)
	c := geo.Destination(b, 0, side)
	d := geo.Destination(a, 0, side)
	return geo.Polygon{a, b, c, d}
}

func TestNewRandomScene(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	area := squareArea(500)
	sc, err := NewRandomScene(area, 20, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Persons) != 20 {
		t.Fatalf("persons = %d", len(sc.Persons))
	}
	criticals := 0
	for _, p := range sc.Persons {
		if !area.Contains(p.Position) {
			t.Fatalf("person %d outside area", p.ID)
		}
		if p.Critical {
			criticals++
		}
	}
	if criticals == 0 || criticals == 20 {
		t.Fatalf("criticals = %d, implausible for p=0.3", criticals)
	}
}

func TestNewRandomSceneValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewRandomScene(nil, 5, 0, rng); err == nil {
		t.Error("nil area must fail")
	}
	if _, err := NewRandomScene(squareArea(100), -1, 0, rng); err == nil {
		t.Error("negative count must fail")
	}
	if _, err := NewRandomScene(squareArea(100), 5, 0, nil); err == nil {
		t.Error("nil rng must fail")
	}
}

func TestRecallDegradesWithAltitude(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := NewDetector(rng)
	if err != nil {
		t.Fatal(err)
	}
	low := d.Recall(Conditions{AltitudeM: 25, Visibility: 1})
	high := d.Recall(Conditions{AltitudeM: 60, Visibility: 1})
	if math.Abs(low-0.998) > 1e-9 {
		t.Fatalf("reference recall = %v, want 0.998", low)
	}
	if high >= low {
		t.Fatalf("recall must degrade with altitude: %v -> %v", low, high)
	}
	if high < 0.5 || high > 0.95 {
		t.Fatalf("60 m recall = %v, outside plausible band", high)
	}
}

func TestRecallDegradesWithVisibilityAndBlur(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, _ := NewDetector(rng)
	clear := d.Recall(Conditions{AltitudeM: 25, Visibility: 1})
	hazy := d.Recall(Conditions{AltitudeM: 25, Visibility: 0.5})
	blurred := d.Recall(Conditions{AltitudeM: 25, Visibility: 1, CameraBlur: 1})
	if hazy >= clear || blurred >= clear {
		t.Fatalf("degraded conditions must lower recall: clear=%v hazy=%v blurred=%v", clear, hazy, blurred)
	}
	if r := d.Recall(Conditions{AltitudeM: 500, Visibility: 0.1, CameraBlur: 5}); r < 0 {
		t.Fatalf("recall must clamp at 0, got %v", r)
	}
}

func TestCaptureDetectsPersonsInFootprint(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, _ := NewDetector(rng)
	sc := &Scene{
		Area: squareArea(500),
		Persons: []Person{
			{ID: 0, Position: geo.Destination(origin, 90, 5)},    // well inside 25m-alt footprint (22.5 m)
			{ID: 1, Position: geo.Destination(origin, 90, 2000)}, // far outside
		},
	}
	cond := Conditions{AltitudeM: 25, Visibility: 1}
	var tp, views int
	for i := 0; i < 200; i++ {
		f, err := d.Capture("u1", float64(i), origin, cond, sc)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range f.InView {
			if id == 1 {
				t.Fatal("distant person must not be in view")
			}
			views++
		}
		for _, det := range f.Detections {
			if det.PersonID == 0 {
				tp++
			}
		}
		if len(f.Features) != FeatureDim {
			t.Fatalf("features = %d, want %d", len(f.Features), FeatureDim)
		}
	}
	if views != 200 {
		t.Fatalf("person 0 in view %d/200 frames", views)
	}
	if tp < 190 {
		t.Fatalf("detected %d/200 at reference conditions, want ~199", tp)
	}
}

func TestCaptureValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, _ := NewDetector(rng)
	if _, err := d.Capture("u", 0, origin, Conditions{AltitudeM: 25}, nil); err == nil {
		t.Error("nil scene must fail")
	}
	if _, err := d.Capture("u", 0, origin, Conditions{AltitudeM: 0}, &Scene{Area: squareArea(10)}); err == nil {
		t.Error("zero altitude must fail")
	}
	if _, err := NewDetector(nil); err == nil {
		t.Error("nil rng must fail")
	}
}

func TestFeatureDistributionShiftsWithAltitude(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, _ := NewDetector(rng)
	ref := d.ReferenceFeatures(300)
	// Mean of feature 0 at reference is ~0.
	var refMean float64
	for _, row := range ref {
		refMean += row[0]
	}
	refMean /= float64(len(ref))
	// At 60 m the same feature shifts by (60-25)/15 ~ 2.3.
	var highMean float64
	for i := 0; i < 300; i++ {
		highMean += d.features(Conditions{AltitudeM: 60, Visibility: 1})[0]
	}
	highMean /= 300
	if highMean-refMean < 1.5 {
		t.Fatalf("altitude shift too small: ref=%v high=%v", refMean, highMean)
	}
}

func TestFootprintGrowsWithAltitude(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, _ := NewDetector(rng)
	if d.FootprintRadiusM(50) <= d.FootprintRadiusM(25) {
		t.Fatal("footprint must grow with altitude")
	}
}

func TestScoreFrames(t *testing.T) {
	frames := []*Frame{
		{
			InView: []int{0, 1},
			Detections: []Detection{
				{PersonID: 0, Confidence: 0.9},
				{PersonID: -1, Confidence: 0.4},
			},
		},
		{
			InView:     []int{2},
			Detections: []Detection{{PersonID: 2, Confidence: 0.95}},
		},
	}
	s := ScoreFrames(frames)
	if s.TruePositives != 2 || s.FalsePositives != 1 || s.FalseNegatives != 1 {
		t.Fatalf("score = %+v", s)
	}
	if math.Abs(s.Precision()-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", s.Precision())
	}
	if math.Abs(s.Recall()-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", s.Recall())
	}
	if math.Abs(s.Accuracy()-0.5) > 1e-12 {
		t.Fatalf("accuracy = %v", s.Accuracy())
	}
}

func TestScoreEdgeCases(t *testing.T) {
	var s Score
	if s.Precision() != 1 || s.Recall() != 1 || s.Accuracy() != 1 {
		t.Fatal("empty score must default to 1")
	}
}

func TestAccuracyHighAtLowAltitude(t *testing.T) {
	// The §V-B shape: accuracy near 99.8% at reference altitude, much
	// lower at 60 m.
	rng := rand.New(rand.NewSource(4))
	d, _ := NewDetector(rng)
	sc, err := NewRandomScene(squareArea(40), 10, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(alt float64) float64 {
		var frames []*Frame
		for i := 0; i < 300; i++ {
			f, err := d.Capture("u1", float64(i), geo.Destination(origin, 45, 28), Conditions{AltitudeM: alt, Visibility: 1}, sc)
			if err != nil {
				t.Fatal(err)
			}
			frames = append(frames, f)
		}
		return ScoreFrames(frames).Accuracy()
	}
	lowAcc := run(25)
	highAcc := run(60)
	if lowAcc < 0.97 {
		t.Fatalf("low-altitude accuracy = %v, want ~0.998", lowAcc)
	}
	if highAcc >= lowAcc-0.05 {
		t.Fatalf("high-altitude accuracy %v not clearly below low-altitude %v", highAcc, lowAcc)
	}
}

func BenchmarkCapture(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d, _ := NewDetector(rng)
	sc, _ := NewRandomScene(squareArea(500), 30, 0.2, rng)
	cond := Conditions{AltitudeM: 30, Visibility: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Capture("u1", 0, origin, cond, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestThermalRecallVisibilityIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d, _ := NewDetector(rng)
	clear := d.Recall(Conditions{AltitudeM: 25, Visibility: 1, Thermal: true})
	dark := d.Recall(Conditions{AltitudeM: 25, Visibility: 0.2, Thermal: true})
	if clear != dark {
		t.Fatalf("thermal recall must ignore visibility: %v vs %v", clear, dark)
	}
	// Thermal peaks below RGB in clear conditions...
	rgbClear := d.Recall(Conditions{AltitudeM: 25, Visibility: 1})
	if clear >= rgbClear {
		t.Fatalf("thermal (%v) must trail RGB (%v) in daylight", clear, rgbClear)
	}
	// ...but wins in poor visibility.
	rgbDark := d.Recall(Conditions{AltitudeM: 25, Visibility: 0.2})
	if dark <= rgbDark {
		t.Fatalf("thermal (%v) must beat RGB (%v) in darkness", dark, rgbDark)
	}
}

func TestThermalMoreFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	d, _ := NewDetector(rng)
	sc := &Scene{Area: squareArea(50)}
	countFPs := func(thermal bool) int {
		n := 0
		for i := 0; i < 3000; i++ {
			f, err := d.Capture("u1", float64(i), origin,
				Conditions{AltitudeM: 25, Visibility: 1, Thermal: thermal}, sc)
			if err != nil {
				t.Fatal(err)
			}
			n += len(f.Detections) // empty scene: all detections are FPs
		}
		return n
	}
	rgb := countFPs(false)
	th := countFPs(true)
	if th <= rgb {
		t.Fatalf("thermal FPs (%d) must exceed RGB (%d)", th, rgb)
	}
}

func TestScoreCritical(t *testing.T) {
	scene := &Scene{Persons: []Person{
		{ID: 0, Critical: true},
		{ID: 1, Critical: false},
		{ID: 2, Critical: true},
	}}
	frames := []*Frame{{
		InView: []int{0, 1, 2},
		Detections: []Detection{
			{PersonID: 0},
			{PersonID: 1},
			{PersonID: -1},
		},
	}}
	s, err := ScoreCritical(frames, scene)
	if err != nil {
		t.Fatal(err)
	}
	// Critical persons: 0 found, 2 missed; non-critical 1 excluded.
	if s.TruePositives != 1 || s.FalseNegatives != 1 || s.FalsePositives != 0 {
		t.Fatalf("critical score = %+v", s)
	}
	if _, err := ScoreCritical(frames, nil); err == nil {
		t.Fatal("nil scene must fail")
	}
}

// TestCaptureWithMatchesCapture proves CaptureWith is Capture with the
// stream made explicit: driven by the detector's own stream it emits
// the exact frames Capture would, an independent stream reproduces its
// own deterministic sequence, and a nil stream is rejected.
func TestCaptureWithMatchesCapture(t *testing.T) {
	area := squareArea(500)
	scene, err := NewRandomScene(area, 15, 0.3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	cond := Conditions{AltitudeM: 25, Visibility: 0.8}

	d1, _ := NewDetector(rand.New(rand.NewSource(9)))
	d2, _ := NewDetector(rand.New(rand.NewSource(9)))
	for i := 0; i < 50; i++ {
		f1, err1 := d1.Capture("u1", float64(i), origin, cond, scene)
		f2, err2 := d2.CaptureWith(d2.rng, "u1", float64(i), origin, cond, scene)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !reflect.DeepEqual(f1, f2) {
			t.Fatalf("frame %d diverges:\n Capture:     %+v\n CaptureWith: %+v", i, f1, f2)
		}
	}

	// An external stream is deterministic in its own right.
	mk := func() []*Frame {
		d, _ := NewDetector(rand.New(rand.NewSource(1)))
		rng := rand.New(rand.NewSource(77))
		var out []*Frame
		for i := 0; i < 20; i++ {
			f, err := d.CaptureWith(rng, "u2", float64(i), origin, cond, scene)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, f)
		}
		return out
	}
	if !reflect.DeepEqual(mk(), mk()) {
		t.Error("CaptureWith with an identical external stream diverged")
	}

	d3, _ := NewDetector(rand.New(rand.NewSource(1)))
	if _, err := d3.CaptureWith(nil, "u", 0, origin, cond, scene); err == nil {
		t.Error("nil rng must fail")
	}
}
