// Package detection is the person-detection substrate that substitutes
// for the tiny-YOLOv4 pipeline of the paper. It provides the three
// things the EDDI stack consumes from a detector:
//
//  1. detections with confidences whose quality depends on altitude,
//     visibility and camera health (driving the §V-B accuracy result),
//  2. per-frame feature vectors whose distribution shifts with the
//     capture conditions (the SafeML sliding-window input), and
//  3. ground truth, so experiments can score accuracy exactly.
//
// The calibration follows the paper's reported operating points: at low
// survey altitude the detector reaches 99.8% accuracy; at high altitude
// accuracy degrades and the feature distribution drifts away from the
// training reference.
package detection

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sesame/internal/geo"
)

// Person is one ground-truth person in the scene.
type Person struct {
	ID       int
	Position geo.LatLng
	// Critical marks persons at high risk (SINADRA weighs missed
	// criticals heavily).
	Critical bool
}

// Scene is the ground truth world the cameras observe.
type Scene struct {
	Area    geo.Polygon
	Persons []Person
}

// NewRandomScene scatters n persons uniformly over the area's bounding
// box (rejecting points outside the polygon), marking each critical
// with probability pCritical.
func NewRandomScene(area geo.Polygon, n int, pCritical float64, rng *rand.Rand) (*Scene, error) {
	if len(area) < 3 {
		return nil, errors.New("detection: scene area needs >= 3 vertices")
	}
	if n < 0 {
		return nil, errors.New("detection: negative person count")
	}
	if rng == nil {
		return nil, errors.New("detection: nil rng")
	}
	sw, ne := area.BoundingBox()
	sc := &Scene{Area: area}
	for id := 0; id < n; id++ {
		var p geo.LatLng
		for tries := 0; ; tries++ {
			if tries > 10000 {
				return nil, errors.New("detection: could not place person inside area")
			}
			p = geo.LatLng{
				Lat: sw.Lat + rng.Float64()*(ne.Lat-sw.Lat),
				Lng: sw.Lng + rng.Float64()*(ne.Lng-sw.Lng),
			}
			if area.Contains(p) {
				break
			}
		}
		sc.Persons = append(sc.Persons, Person{
			ID:       id,
			Position: p,
			Critical: rng.Float64() < pCritical,
		})
	}
	return sc, nil
}

// Conditions describe one camera capture's circumstances.
type Conditions struct {
	AltitudeM float64
	// Visibility in [0,1]; 1 is clear air.
	Visibility float64
	// CameraBlur >= 0 models a degraded sensor.
	CameraBlur float64
	// Thermal selects the thermal imager instead of the RGB camera:
	// recall becomes insensitive to optical visibility (body heat shows
	// through haze and darkness) at the cost of a lower peak recall and
	// more false positives from warm clutter.
	Thermal bool
}

// Detection is one detector output.
type Detection struct {
	PersonID   int // matching ground-truth person, or -1 for a false positive
	Position   geo.LatLng
	Confidence float64
}

// Frame is one processed capture.
type Frame struct {
	UAV        string
	Stamp      float64
	Conditions Conditions
	Detections []Detection
	// InView lists the ground-truth person ids inside the footprint.
	InView []int
	// Features is the frame's feature vector for SafeML (dimension
	// FeatureDim), distributed according to the capture conditions.
	Features []float64
}

// FeatureDim is the length of Frame.Features.
const FeatureDim = 6

// Detector is the calibrated detection model.
type Detector struct {
	// RefAltitudeM is the altitude the model was "trained" at; accuracy
	// and feature distributions are nominal there.
	RefAltitudeM float64
	// HalfAngleTan maps altitude to footprint radius:
	// radius = altitude * HalfAngleTan.
	HalfAngleTan float64
	// PeakRecall is the per-person detection probability under
	// reference conditions (0.998 reproduces the paper's 99.8%).
	PeakRecall float64
	// AltDecayPer10m is the recall lost per 10 m above reference.
	AltDecayPer10m float64
	// FalsePositiveRate is the expected count of spurious detections
	// per frame under reference conditions; it grows when conditions
	// degrade.
	FalsePositiveRate float64

	rng *rand.Rand
}

// NewDetector returns a detector calibrated to the paper's operating
// points, drawing stochastic outcomes from rng.
func NewDetector(rng *rand.Rand) (*Detector, error) {
	if rng == nil {
		return nil, errors.New("detection: nil rng")
	}
	return &Detector{
		RefAltitudeM:      25,
		HalfAngleTan:      0.9,
		PeakRecall:        0.998,
		AltDecayPer10m:    0.045,
		FalsePositiveRate: 0.02,
		rng:               rng,
	}, nil
}

// ThermalPeakPenalty scales the thermal imager's peak recall relative
// to RGB (lower resolution, washout on warm ground).
const ThermalPeakPenalty = 0.95

// ThermalFalsePositiveFactor multiplies the false-positive rate in
// thermal mode (warm rocks, animals).
const ThermalFalsePositiveFactor = 3.0

// Recall returns the per-person detection probability under cond.
func (d *Detector) Recall(cond Conditions) float64 {
	r := d.PeakRecall
	if cond.Thermal {
		r *= ThermalPeakPenalty
	}
	if dAlt := cond.AltitudeM - d.RefAltitudeM; dAlt > 0 {
		r -= d.AltDecayPer10m * dAlt / 10
	}
	if !cond.Thermal {
		vis := cond.Visibility
		if vis <= 0 {
			vis = 1
		}
		r *= math.Pow(vis, 0.5)
	}
	r /= 1 + cond.CameraBlur
	if r < 0 {
		return 0
	}
	return r
}

// FootprintRadiusM returns the camera ground footprint radius at the
// given altitude.
func (d *Detector) FootprintRadiusM(altM float64) float64 {
	return altM * d.HalfAngleTan
}

// Capture runs the detector over the scene from a camera at pos/cond
// and returns the frame, drawing from the detector's own stream.
func (d *Detector) Capture(uav string, stamp float64, pos geo.LatLng, cond Conditions, scene *Scene) (*Frame, error) {
	return d.CaptureWith(d.rng, uav, stamp, pos, cond, scene)
}

// CaptureWith is Capture drawing stochastic outcomes from the given
// stream instead of the detector's own. A sharded fleet scheduler gives
// every vehicle (or shard) its own stream so captures can run
// concurrently while each stream's draw sequence stays deterministic.
func (d *Detector) CaptureWith(rng *rand.Rand, uav string, stamp float64, pos geo.LatLng, cond Conditions, scene *Scene) (*Frame, error) {
	if rng == nil {
		return nil, errors.New("detection: nil rng")
	}
	if scene == nil {
		return nil, errors.New("detection: nil scene")
	}
	if cond.AltitudeM <= 0 {
		return nil, fmt.Errorf("detection: non-positive altitude %v", cond.AltitudeM)
	}
	radius := d.FootprintRadiusM(cond.AltitudeM)
	recall := d.Recall(cond)
	f := &Frame{UAV: uav, Stamp: stamp, Conditions: cond}
	for _, p := range scene.Persons {
		if geo.Haversine(pos, p.Position) > radius {
			continue
		}
		f.InView = append(f.InView, p.ID)
		if rng.Float64() < recall {
			// Localization error grows with altitude.
			sigma := 0.5 + cond.AltitudeM/50
			pr := geo.NewProjection(p.Position)
			measured := pr.ToLatLng(geo.ENU{
				East:  rng.NormFloat64() * sigma,
				North: rng.NormFloat64() * sigma,
			})
			f.Detections = append(f.Detections, Detection{
				PersonID:   p.ID,
				Position:   measured,
				Confidence: clamp01(recall + 0.15*rng.NormFloat64()),
			})
		}
	}
	// False positives scale with condition degradation; the thermal
	// imager adds warm-clutter confusions.
	fpRate := d.FalsePositiveRate * (1 + (1-recall/d.PeakRecall)*10)
	if cond.Thermal {
		fpRate *= ThermalFalsePositiveFactor
	}
	for fpRate > 0 && rng.Float64() < fpRate {
		fpRate--
		bearing := rng.Float64() * 360
		dist := rng.Float64() * radius
		f.Detections = append(f.Detections, Detection{
			PersonID:   -1,
			Position:   geo.Destination(pos, bearing, dist),
			Confidence: clamp01(0.3 + 0.2*rng.NormFloat64()),
		})
	}
	f.Features = d.featuresWith(rng, cond)
	return f, nil
}

// features draws the frame's feature vector. Under reference
// conditions each feature is N(mu_i, 1); altitude and blur shift the
// means and widen the spread, giving SafeML a real distribution shift
// to detect.
func (d *Detector) features(cond Conditions) []float64 {
	return d.featuresWith(d.rng, cond)
}

// featuresWith draws the feature vector from the given stream.
func (d *Detector) featuresWith(rng *rand.Rand, cond Conditions) []float64 {
	shift := 0.0
	if dAlt := cond.AltitudeM - d.RefAltitudeM; dAlt > 0 {
		shift = dAlt / 15
	}
	// Optical visibility shifts RGB features (contrast collapse at
	// night); thermal imagery is immune to it.
	if !cond.Thermal {
		vis := cond.Visibility
		if vis <= 0 {
			vis = 1
		}
		shift += (1 - vis) * 2
	}
	shift += cond.CameraBlur
	spread := 1 + shift/4
	out := make([]float64, FeatureDim)
	for i := range out {
		mu := float64(i) + shift*(1+0.2*float64(i%3))
		out[i] = mu + spread*rng.NormFloat64()
	}
	return out
}

// ReferenceFeatures samples n frames' worth of feature vectors under
// reference conditions — the SafeML training reference set.
func (d *Detector) ReferenceFeatures(n int) [][]float64 {
	return d.ReferenceFeaturesFor(n, false)
}

// ReferenceFeaturesFor samples a reference set for the given modality;
// a thermal perception model must be referenced on thermal frames.
func (d *Detector) ReferenceFeaturesFor(n int, thermal bool) [][]float64 {
	cond := Conditions{AltitudeM: d.RefAltitudeM, Visibility: 1, Thermal: thermal}
	out := make([][]float64, n)
	for i := range out {
		out[i] = d.features(cond)
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Score compares frames against the scene's ground truth and returns
// aggregate detection metrics over all frames.
type Score struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Precision returns TP/(TP+FP), or 1 when no detections were made.
func (s Score) Precision() float64 {
	if s.TruePositives+s.FalsePositives == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(s.TruePositives+s.FalsePositives)
}

// Recall returns TP/(TP+FN), or 1 when nothing was in view.
func (s Score) Recall() float64 {
	if s.TruePositives+s.FalseNegatives == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(s.TruePositives+s.FalseNegatives)
}

// Accuracy returns TP/(TP+FP+FN), the detection accuracy measure used
// in the §V-B result.
func (s Score) Accuracy() float64 {
	total := s.TruePositives + s.FalsePositives + s.FalseNegatives
	if total == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(total)
}

// ScoreFrames accumulates metrics over frames: a person in view counts
// as TP when some detection references them, FN otherwise; detections
// with PersonID -1 are FPs.
func ScoreFrames(frames []*Frame) Score {
	var s Score
	for _, f := range frames {
		detected := make(map[int]bool)
		for _, det := range f.Detections {
			if det.PersonID < 0 {
				s.FalsePositives++
			} else {
				detected[det.PersonID] = true
			}
		}
		for _, id := range f.InView {
			if detected[id] {
				s.TruePositives++
			} else {
				s.FalseNegatives++
			}
		}
	}
	return s
}

// ScoreCritical scores only the scene's critical persons — the missed
// detections SINADRA weighs heaviest. False positives are excluded
// (they have no criticality).
func ScoreCritical(frames []*Frame, scene *Scene) (Score, error) {
	if scene == nil {
		return Score{}, errors.New("detection: nil scene")
	}
	critical := make(map[int]bool, len(scene.Persons))
	for _, p := range scene.Persons {
		if p.Critical {
			critical[p.ID] = true
		}
	}
	var s Score
	for _, f := range frames {
		detected := make(map[int]bool)
		for _, det := range f.Detections {
			if det.PersonID >= 0 {
				detected[det.PersonID] = true
			}
		}
		for _, id := range f.InView {
			if !critical[id] {
				continue
			}
			if detected[id] {
				s.TruePositives++
			} else {
				s.FalseNegatives++
			}
		}
	}
	return s, nil
}
