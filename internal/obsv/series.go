package obsv

import (
	"sort"
	"sync"
)

// CounterVec is a single-label counter family with a hard cardinality
// cap: once cap distinct label values exist, further values share the
// OverflowLabel series, so an unbounded label domain (topic names,
// node ids) cannot grow memory without bound.
type CounterVec struct {
	mu       sync.RWMutex
	series   map[string]*Counter
	cap      int
	overflow *Counter
}

// With returns the counter for the label value, creating it (or the
// shared overflow series, past the cap) on first use. Returns nil on a
// nil receiver. The fast path is a read-locked map hit: no allocation.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.series[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.series[value]; c != nil {
		return c
	}
	if len(v.series) >= v.cap {
		if v.overflow == nil {
			v.overflow = &Counter{}
			v.series[OverflowLabel] = v.overflow
		}
		return v.overflow
	}
	c = &Counter{}
	v.series[value] = c
	return c
}

// Len returns the number of live series (overflow included).
func (v *CounterVec) Len() int {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.series)
}

// labels returns the sorted label values.
func (v *CounterVec) labels() []string {
	v.mu.RLock()
	out := make([]string, 0, len(v.series))
	for lv := range v.series {
		out = append(out, lv)
	}
	v.mu.RUnlock()
	sort.Strings(out)
	return out
}

// HistogramVec is a single-label histogram family sharing one bucket
// layout, with the same cardinality cap behaviour as CounterVec.
type HistogramVec struct {
	mu       sync.RWMutex
	series   map[string]*Histogram
	cap      int
	bounds   []float64
	overflow *Histogram
}

// With returns the histogram for the label value, creating it (or the
// shared overflow series) on first use. Returns nil on a nil receiver.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.series[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.series[value]; h != nil {
		return h
	}
	if len(v.series) >= v.cap {
		if v.overflow == nil {
			v.overflow = newFromBounds(v.bounds)
			v.series[OverflowLabel] = v.overflow
		}
		return v.overflow
	}
	h = newFromBounds(v.bounds)
	v.series[value] = h
	return h
}

// Len returns the number of live series (overflow included).
func (v *HistogramVec) Len() int {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.series)
}

// labels returns the sorted label values.
func (v *HistogramVec) labels() []string {
	v.mu.RLock()
	out := make([]string, 0, len(v.series))
	for lv := range v.series {
		out = append(out, lv)
	}
	v.mu.RUnlock()
	sort.Strings(out)
	return out
}
