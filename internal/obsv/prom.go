package obsv

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, series
// sorted by label value, histograms as cumulative _bucket/_sum/_count
// series. Safe to call concurrently with metric writers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	ew := &errWriter{w: w}

	// Each kind slice is sorted by name; merge them so families of
	// different kinds still come out in global name order.
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	last := ""
	collect := func(name string) {
		if name != last {
			names = append(names, name)
			last = name
		}
	}
	for _, c := range s.Counters {
		collect(c.Name)
	}
	for _, g := range s.Gauges {
		collect(g.Name)
	}
	for _, h := range s.Histograms {
		collect(h.Name)
	}
	sort.Strings(names)

	header := func(name, kind string) {
		if help := r.Help(name); help != "" {
			ew.printf("# HELP %s %s\n", name, escapeHelp(help))
		}
		ew.printf("# TYPE %s %s\n", name, kind)
	}

	ci, gi, hi := 0, 0, 0
	for _, name := range names {
		for first := true; ci < len(s.Counters) && s.Counters[ci].Name == name; ci++ {
			c := s.Counters[ci]
			if first {
				header(name, "counter")
				first = false
			}
			ew.printf("%s%s %d\n", c.Name, labelPair(c.Label, c.Value), c.Count)
		}
		for first := true; gi < len(s.Gauges) && s.Gauges[gi].Name == name; gi++ {
			g := s.Gauges[gi]
			if first {
				header(name, "gauge")
				first = false
			}
			ew.printf("%s %s\n", g.Name, formatFloat(g.Level))
		}
		for first := true; hi < len(s.Histograms) && s.Histograms[hi].Name == name; hi++ {
			h := s.Histograms[hi]
			if first {
				header(name, "histogram")
				first = false
			}
			var cum uint64
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				ew.printf("%s_bucket%s %d\n", h.Name, bucketLabels(h.Label, h.Value, formatFloat(bound)), cum)
			}
			cum += h.Counts[len(h.Counts)-1]
			ew.printf("%s_bucket%s %d\n", h.Name, bucketLabels(h.Label, h.Value, "+Inf"), cum)
			ew.printf("%s_sum%s %s\n", h.Name, labelPair(h.Label, h.Value), formatFloat(h.Sum))
			ew.printf("%s_count%s %d\n", h.Name, labelPair(h.Label, h.Value), h.Count)
		}
	}
	return ew.err
}

// errWriter latches the first write error so the exposition loop stays
// linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...interface{}) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// labelPair renders `{key="value"}` or "" for unlabeled series.
func labelPair(key, value string) string {
	if key == "" {
		return ""
	}
	return "{" + key + `="` + escapeLabel(value) + `"}`
}

// bucketLabels renders histogram bucket labels with the le bound,
// merging the series label when present.
func bucketLabels(key, value, le string) string {
	if key == "" {
		return `{le="` + le + `"}`
	}
	return "{" + key + `="` + escapeLabel(value) + `",le="` + le + `"}`
}

// escapeLabel applies the text-format label escaping: backslash,
// double-quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the help-string escaping: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatFloat renders a float the shortest way that round-trips,
// matching Prometheus client conventions.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
