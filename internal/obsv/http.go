package obsv

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in the Prometheus text exposition
// format. A nil registry serves an empty (valid) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// DebugMux returns the observability endpoint set wired into
// sesame-gcs: the Prometheus exposition on /metrics, the standard
// net/http/pprof profile suite under /debug/pprof/, and the trace ring
// as JSON on /debug/trace. The pprof handlers are mounted explicitly
// so no process-global DefaultServeMux state is relied on.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events := r.Trace().Snapshot()
		if events == nil {
			events = []TraceEvent{}
		}
		_ = json.NewEncoder(w).Encode(events)
	})
	return mux
}
