// Package obsv is the platform's dependency-free observability core:
// an allocation-conscious metrics registry (atomic counters, gauges,
// fixed-bucket histograms and single-label series variants) plus a
// bounded per-tick trace ring (trace.go) and a Prometheus
// text-exposition writer (prom.go).
//
// Contracts the rest of the repo relies on:
//
//   - Nil safety: every method is a no-op on a nil receiver, and every
//     registry getter on a nil *Registry returns a nil metric. Code can
//     therefore hold metric handles unconditionally and pay nothing
//     (zero extra allocations, a nil check per site) when observability
//     is disabled.
//   - Determinism: counters and histogram observation counts are pure
//     functions of the simulated scenario; only durations (histogram
//     sums/buckets, trace durations) are wall-clock dependent. The
//     platform merges only the deterministic subset (CounterValues)
//     into its Status, which keeps golden digests bit-identical with
//     observability on and off.
//   - Bounded cardinality: labeled series fold into the OverflowLabel
//     series once a family reaches the registry's series cap, so a
//     hostile or runaway label set cannot grow memory without bound.
package obsv

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultSeriesCap is the default per-family label cardinality bound.
const DefaultSeriesCap = 64

// OverflowLabel is the label value that absorbs series created beyond
// the cardinality cap.
const OverflowLabel = "other"

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically set float64 level.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add shifts the gauge by d. No-op on a nil receiver.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current level (0 for a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metricKind discriminates registry families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric family: either a single unlabeled metric
// or a labeled series set (one label key, bounded cardinality).
type family struct {
	name, help string
	kind       metricKind
	label      string // "" for unlabeled families

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cvec    *CounterVec
	hvec    *HistogramVec
}

// Registry is the metric namespace. The zero value is not usable; call
// NewRegistry. A nil *Registry is a fully functional no-op registry.
type Registry struct {
	mu        sync.Mutex
	fams      map[string]*family
	order     []string // registration order kept for conflict checks only
	seriesCap int
	trace     atomic.Pointer[TraceRing]
}

// NewRegistry returns an empty registry with the default series cap.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family), seriesCap: DefaultSeriesCap}
}

// SetSeriesCap bounds the label cardinality of vec families created
// after the call. Values < 1 are clamped to 1.
func (r *Registry) SetSeriesCap(n int) {
	if r == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	r.seriesCap = n
	r.mu.Unlock()
}

// SetTrace installs the trace ring returned by Trace.
func (r *Registry) SetTrace(t *TraceRing) {
	if r != nil {
		r.trace.Store(t)
	}
}

// Trace returns the installed trace ring (nil when absent or on a nil
// registry).
func (r *Registry) Trace() *TraceRing {
	if r == nil {
		return nil
	}
	return r.trace.Load()
}

// lookup fetches or creates a family. A name already registered with a
// different kind or label key yields ok=false: the caller returns a
// nil metric, which degrades to a silent no-op instead of panicking
// inside an instrumented hot path.
func (r *Registry) lookup(name, help string, kind metricKind, label string) (*family, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, exists := r.fams[name]
	if exists {
		if f.kind != kind || f.label != label {
			return nil, false
		}
		return f, true
	}
	f = &family{name: name, help: help, kind: kind, label: label}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f, true
}

// Counter returns the named unlabeled counter, creating it on first
// use. Returns nil on a nil registry or on a name/kind conflict.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f, ok := r.lookup(name, help, kindCounter, "")
	if !ok {
		return nil
	}
	if f.counter == nil {
		f.counter = &Counter{}
	}
	return f.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f, ok := r.lookup(name, help, kindGauge, "")
	if !ok {
		return nil
	}
	if f.gauge == nil {
		f.gauge = &Gauge{}
	}
	return f.gauge
}

// Histogram returns the named unlabeled histogram over the given
// ascending bucket upper bounds (a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	f, ok := r.lookup(name, help, kindHistogram, "")
	if !ok {
		return nil
	}
	if f.hist == nil {
		f.hist = newHistogram(bounds)
	}
	return f.hist
}

// CounterVec returns the named single-label counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil || label == "" {
		return nil
	}
	f, ok := r.lookup(name, help, kindCounter, label)
	if !ok {
		return nil
	}
	if f.cvec == nil {
		f.cvec = &CounterVec{series: make(map[string]*Counter), cap: r.seriesCap}
	}
	return f.cvec
}

// HistogramVec returns the named single-label histogram family.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if r == nil || label == "" {
		return nil
	}
	f, ok := r.lookup(name, help, kindHistogram, label)
	if !ok {
		return nil
	}
	if f.hvec == nil {
		f.hvec = &HistogramVec{
			series: make(map[string]*Histogram),
			cap:    r.seriesCap,
			bounds: normalizeBounds(bounds),
		}
	}
	return f.hvec
}

// CounterSample is one counter series value in a snapshot.
type CounterSample struct {
	Name  string
	Label string // label key ("" for unlabeled)
	Value string // label value ("" for unlabeled)
	Count uint64
}

// GaugeSample is one gauge value in a snapshot.
type GaugeSample struct {
	Name  string
	Level float64
}

// HistogramSample is one histogram series in a snapshot.
type HistogramSample struct {
	Name   string
	Label  string
	Value  string
	Count  uint64
	Sum    float64
	Bounds []float64 // ascending finite upper bounds
	Counts []uint64  // len(Bounds)+1; last is the +Inf bucket
}

// Snapshot is a point-in-time copy of every registered series, sorted
// by (name, label value) for deterministic iteration.
type Snapshot struct {
	Counters   []CounterSample
	Gauges     []GaugeSample
	Histograms []HistogramSample
}

// Snapshot copies the registry. Safe for concurrent use with writers;
// an empty snapshot is returned for a nil registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		switch f.kind {
		case kindCounter:
			if f.counter != nil {
				s.Counters = append(s.Counters, CounterSample{Name: f.name, Count: f.counter.Value()})
			}
			if f.cvec != nil {
				for _, lv := range f.cvec.labels() {
					s.Counters = append(s.Counters, CounterSample{
						Name: f.name, Label: f.label, Value: lv,
						Count: f.cvec.With(lv).Value(),
					})
				}
			}
		case kindGauge:
			if f.gauge != nil {
				s.Gauges = append(s.Gauges, GaugeSample{Name: f.name, Level: f.gauge.Value()})
			}
		case kindHistogram:
			if f.hist != nil {
				s.Histograms = append(s.Histograms, f.hist.sample(f.name, "", ""))
			}
			if f.hvec != nil {
				for _, lv := range f.hvec.labels() {
					s.Histograms = append(s.Histograms, f.hvec.With(lv).sample(f.name, f.label, lv))
				}
			}
		}
	}
	return s
}

// Help returns the registered help string for name ("" when unknown).
func (r *Registry) Help(name string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		return f.help
	}
	return ""
}

// CounterValues flattens the deterministic subset of the registry —
// every counter series plus every histogram observation count — into a
// map keyed "name" or `name{label="value"}` (histogram counts take a
// "_count" suffix). This is the view the platform merges into Status:
// under a fixed scenario every entry is a pure function of the
// simulation, never of wall-clock timing, so golden digests stay
// bit-identical with observability on.
func (r *Registry) CounterValues() map[string]uint64 {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	out := make(map[string]uint64, len(s.Counters)+len(s.Histograms))
	for _, c := range s.Counters {
		out[seriesKey(c.Name, c.Label, c.Value)] = c.Count
	}
	for _, h := range s.Histograms {
		out[seriesKey(h.Name+"_count", h.Label, h.Value)] = h.Count
	}
	return out
}

// seriesKey formats a flat series identifier.
func seriesKey(name, label, value string) string {
	if label == "" {
		return name
	}
	return name + "{" + label + `="` + value + `"}`
}
