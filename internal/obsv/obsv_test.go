package obsv

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety proves the disabled-observability contract: every
// operation on nil receivers is a no-op that returns zero values.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.SetSeriesCap(8) // must not panic
	if c := r.Counter("c", ""); c != nil {
		t.Error("nil registry must return nil counter")
	}
	if g := r.Gauge("g", ""); g != nil {
		t.Error("nil registry must return nil gauge")
	}
	if h := r.Histogram("h", "", nil); h != nil {
		t.Error("nil registry must return nil histogram")
	}
	if v := r.CounterVec("cv", "", "l"); v != nil {
		t.Error("nil registry must return nil counter vec")
	}
	if v := r.HistogramVec("hv", "", "l", nil); v != nil {
		t.Error("nil registry must return nil histogram vec")
	}
	if r.Trace() != nil || r.Help("x") != "" || r.CounterValues() != nil {
		t.Error("nil registry accessors must return zero values")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}

	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter must stay zero")
	}
	var g *Gauge
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Error("nil gauge must stay zero")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram must stay zero")
	}
	var cv *CounterVec
	cv.With("x").Inc()
	if cv.Len() != 0 {
		t.Error("nil counter vec must be empty")
	}
	var hv *HistogramVec
	hv.With("x").Observe(1)
	if hv.Len() != 0 {
		t.Error("nil histogram vec must be empty")
	}
	var tr *TraceRing
	tr.Record(TraceEvent{})
	if tr.Capacity() != 0 || tr.Total() != 0 || tr.Snapshot() != nil {
		t.Error("nil trace ring must be inert")
	}
	var sink strings.Builder
	if err := r.WritePrometheus(&sink); err != nil {
		t.Fatalf("nil registry exposition: %v", err)
	}
	if sink.Len() != 0 {
		t.Errorf("nil registry exposition must be empty, got %q", sink.String())
	}
}

// TestCounterGaugeConcurrency hammers one counter and one gauge from
// many goroutines; with -race this is also the data-race check.
func TestCounterGaugeConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "hits")
	g := r.Gauge("level", "level")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Errorf("gauge set = %v, want -2.5", g.Value())
	}
}

// TestHistogramBucketBoundaries pins the le semantics: a value equal
// to a bound lands in that bound's bucket; values above every bound
// land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		obs    []float64
		want   []uint64 // per-bucket counts, last is +Inf
	}{
		{"exact-bounds", []float64{1, 2, 4}, []float64{1, 2, 4}, []uint64{1, 1, 1, 0}},
		{"just-above", []float64{1, 2, 4}, []float64{1.0001, 2.0001, 4.0001}, []uint64{0, 1, 1, 1}},
		{"below-first", []float64{1, 2}, []float64{-5, 0, 0.5}, []uint64{3, 0, 0}},
		{"all-overflow", []float64{1}, []float64{2, 3, 100}, []uint64{0, 3}},
		{"no-bounds", nil, []float64{1, 2}, []uint64{2}},
		{"unsorted-dup-input", []float64{4, 1, 4, 2}, []float64{1, 3, 9}, []uint64{1, 0, 1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.bounds)
			var sum float64
			for _, v := range tc.obs {
				h.Observe(v)
				sum += v
			}
			if h.Count() != uint64(len(tc.obs)) {
				t.Errorf("count = %d, want %d", h.Count(), len(tc.obs))
			}
			if h.Sum() != sum {
				t.Errorf("sum = %v, want %v", h.Sum(), sum)
			}
			s := h.sample("h", "", "")
			if len(s.Counts) != len(tc.want) {
				t.Fatalf("bucket count = %d, want %d", len(s.Counts), len(tc.want))
			}
			for i, w := range tc.want {
				if s.Counts[i] != w {
					t.Errorf("bucket[%d] = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
				}
			}
		})
	}
}

// TestHistogramConcurrency checks the exact sum/count invariant under
// concurrent observation (CAS sum loop, atomic bucket adds).
func TestHistogramConcurrency(t *testing.T) {
	h := NewHistogram([]float64{0.5})
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1) // integer-valued: float sum stays exact
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Sum() != workers*per {
		t.Errorf("sum = %v, want %d", h.Sum(), workers*per)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // bucket le=1
	}
	for i := 0; i < 10; i++ {
		h.Observe(3) // bucket le=4
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("p50 = %v, want 1", q)
	}
	if q := h.Quantile(0.95); q != 4 {
		t.Errorf("p95 = %v, want 4", q)
	}
	h.Observe(100) // +Inf bucket: reported as largest finite bound
	if q := h.Quantile(1); q != 4 {
		t.Errorf("p100 = %v, want 4 (largest finite bound)", q)
	}
	if q := h.Quantile(-1); q != 1 {
		t.Errorf("clamped q<0 = %v, want 1", q)
	}
}

// TestSeriesCardinalityCap proves the labeled-series memory bound: at
// the cap, new labels share the overflow series, and the overflow is
// visible in the exposition under OverflowLabel.
func TestSeriesCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesCap(3)
	cv := r.CounterVec("msgs_total", "messages", "topic")
	for i := 0; i < 3; i++ {
		cv.With(fmt.Sprintf("t%d", i)).Inc()
	}
	cv.With("t99").Add(5)
	cv.With("t100").Add(7)
	if got := cv.With("t99").Value(); got != 12 {
		t.Errorf("overflow series = %d, want 12 (shared)", got)
	}
	if cv.With("t99") != cv.With("t100") {
		t.Error("labels past the cap must share one overflow counter")
	}
	if cv.Len() != 4 { // 3 real + overflow
		t.Errorf("series len = %d, want 4", cv.Len())
	}
	vals := r.CounterValues()
	if vals[`msgs_total{topic="other"}`] != 12 {
		t.Errorf("overflow not exposed: %v", vals)
	}

	hv := r.HistogramVec("lat_seconds", "latency", "uav", []float64{1})
	for i := 0; i < 3; i++ {
		hv.With(fmt.Sprintf("u%d", i)).Observe(0.5)
	}
	hv.With("u77").Observe(0.5)
	hv.With("u78").Observe(0.5)
	if hv.With("u77") != hv.With("u78") {
		t.Error("histogram labels past the cap must share one overflow series")
	}
	if got := hv.With("u77").Count(); got != 2 {
		t.Errorf("overflow histogram count = %d, want 2", got)
	}
	if hv.Len() != 4 {
		t.Errorf("histogram series len = %d, want 4", hv.Len())
	}
}

// TestVecConcurrency creates and increments labeled series from many
// goroutines at once (the RLock fast path vs the create slow path).
func TestVecConcurrency(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c_total", "", "k")
	hv := r.HistogramVec("h_seconds", "", "k", []float64{1})
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				label := fmt.Sprintf("k%d", (w+i)%4)
				cv.With(label).Inc()
				hv.With(label).Observe(0.5)
			}
		}()
	}
	wg.Wait()
	var total uint64
	for i := 0; i < 4; i++ {
		total += cv.With(fmt.Sprintf("k%d", i)).Value()
	}
	if total != workers*500 {
		t.Errorf("total = %d, want %d", total, workers*500)
	}
}

// TestRegistryConflicts pins the forgiving conflict behaviour: a name
// re-registered with another kind or label key returns nil (a no-op
// metric), never a panic, and the original family keeps working.
func TestRegistryConflicts(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "first help")
	c.Add(2)
	if r.Gauge("x_total", "") != nil {
		t.Error("kind conflict must return nil")
	}
	if r.Histogram("x_total", "", nil) != nil {
		t.Error("kind conflict must return nil histogram")
	}
	if r.CounterVec("x_total", "", "l") != nil {
		t.Error("label conflict must return nil vec")
	}
	if got := r.Counter("x_total", "ignored second help"); got != c {
		t.Error("re-registration must return the same counter")
	}
	if r.Help("x_total") != "first help" {
		t.Errorf("help = %q, want the first registration's", r.Help("x_total"))
	}
	if c.Value() != 2 {
		t.Error("original counter must be unaffected")
	}
	if r.CounterVec("v_total", "", "") != nil {
		t.Error("empty label key must return nil vec")
	}
	if r.HistogramVec("hv_seconds", "", "", nil) != nil {
		t.Error("empty label key must return nil histogram vec")
	}
}

// TestCounterValuesDeterministic checks the flattened Status view:
// counters and histogram counts only, stable keys.
func TestCounterValuesDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(3)
	r.CounterVec("b_total", "", "uav").With("u1").Add(4)
	r.Gauge("g", "").Set(9.5) // gauges excluded: float-valued
	h := r.Histogram("lat_seconds", "", []float64{1})
	h.Observe(0.25)
	h.Observe(2.5)
	want := map[string]uint64{
		"a_total":           3,
		`b_total{uav="u1"}`: 4,
		"lat_seconds_count": 2,
	}
	got := r.CounterValues()
	if len(got) != len(want) {
		t.Fatalf("CounterValues = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("CounterValues[%q] = %d, want %d", k, got[k], v)
		}
	}
}
