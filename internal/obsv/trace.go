package obsv

import (
	"sync"
	"time"
)

// Trace outcome values used by the platform instrumentation.
const (
	OutcomeOK    = "ok"
	OutcomeError = "error"
	OutcomePanic = "panic"
	OutcomeHalt  = "halt"
)

// TraceEvent is one timed step of a platform tick: a scheduler phase
// (UAV/Monitor empty) or one monitor evaluation.
type TraceEvent struct {
	Tick     uint64        `json:"tick"`
	UAV      string        `json:"uav,omitempty"`
	Monitor  string        `json:"monitor,omitempty"`
	Phase    string        `json:"phase"`
	Duration time.Duration `json:"duration_ns"`
	Outcome  string        `json:"outcome"`
}

// traceEventFootprint is the per-slot memory estimate used to size a
// ring from a byte budget: the struct itself (~72 B on 64-bit) plus
// slack for the string headers' backing data being pinned. Event
// strings are shared constants/ids in practice, so this overestimates.
const traceEventFootprint = 128

// TraceRing is a bounded ring buffer of the most recent trace events.
// Record overwrites the oldest event once the ring is full, so memory
// stays capped no matter how long the mission runs. All methods are
// safe for concurrent use; a nil *TraceRing is a no-op.
type TraceRing struct {
	mu    sync.Mutex
	buf   []TraceEvent
	total uint64
}

// NewTraceRing returns a ring holding the last capacity events
// (clamped to at least 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]TraceEvent, 0, capacity)}
}

// TraceRingForBudget sizes a ring to roughly maxBytes of event
// storage.
func TraceRingForBudget(maxBytes int) *TraceRing {
	return NewTraceRing(maxBytes / traceEventFootprint)
}

// Record appends ev, evicting the oldest event when full. No-op on a
// nil receiver; allocation-free once the ring has filled.
func (t *TraceRing) Record(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.total%uint64(cap(t.buf))] = ev
	}
	t.total++
	t.mu.Unlock()
}

// Capacity returns the ring's event capacity (0 on nil).
func (t *TraceRing) Capacity() int {
	if t == nil {
		return 0
	}
	return cap(t.buf)
}

// Total returns how many events were ever recorded, including
// overwritten ones (0 on nil).
func (t *TraceRing) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot copies the retained events, oldest first (nil on an empty
// or nil ring).
func (t *TraceRing) Snapshot() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) == 0 {
		return nil
	}
	out := make([]TraceEvent, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) || t.total <= uint64(cap(t.buf)) {
		return append(out, t.buf...)
	}
	start := int(t.total % uint64(cap(t.buf)))
	out = append(out, t.buf[start:]...)
	return append(out, t.buf[:start]...)
}
