package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionFormat pins the text-format output end to end: family
// ordering, TYPE/HELP headers, cumulative buckets, +Inf, sum/count.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last family").Add(7)
	r.CounterVec("aa_total", "first family", "topic").With("t/b").Add(2)
	r.CounterVec("aa_total", "first family", "topic").With("t/a").Add(1)
	r.Gauge("mm_level", "a gauge").Set(1.5)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_total first family
# TYPE aa_total counter
aa_total{topic="t/a"} 1
aa_total{topic="t/b"} 2
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 2
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 5.6
lat_seconds_count 4
# HELP mm_level a gauge
# TYPE mm_level gauge
mm_level 1.5
# HELP zz_total last family
# TYPE zz_total counter
zz_total 7
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionEscaping checks label-value and help escaping per the
// text format: backslash, quote and newline in labels; backslash and
// newline in help.
func TestExpositionEscaping(t *testing.T) {
	cases := []struct {
		name  string
		label string
		want  string
	}{
		{"quote", `says "hi"`, `esc_total{k="says \"hi\""} 1`},
		{"backslash", `a\b`, `esc_total{k="a\\b"} 1`},
		{"newline", "two\nlines", `esc_total{k="two\nlines"} 1`},
		{"plain", "plain", `esc_total{k="plain"} 1`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			r.CounterVec("esc_total", "", "k").With(tc.label).Inc()
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(b.String(), tc.want+"\n") {
				t.Errorf("exposition %q missing %q", b.String(), tc.want)
			}
		})
	}

	r := NewRegistry()
	r.Counter("h_total", "line1\nline2 with \\ slash").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `# HELP h_total line1\nline2 with \\ slash`) {
		t.Errorf("help not escaped: %q", b.String())
	}
}

// TestExpositionHistogramVec checks labeled histogram exposition keeps
// the series label alongside le.
func TestExpositionHistogramVec(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("obs_seconds", "", "monitor", []float64{1})
	hv.With("safeml").Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`obs_seconds_bucket{monitor="safeml",le="1"} 1`,
		`obs_seconds_bucket{monitor="safeml",le="+Inf"} 1`,
		`obs_seconds_sum{monitor="safeml"} 0.5`,
		`obs_seconds_count{monitor="safeml"} 1`,
	} {
		if !strings.Contains(b.String(), want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// errorWriter fails after n bytes, exercising the errWriter latch.
type errorWriter struct{ left int }

func (w *errorWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, io.ErrClosedPipe
	}
	w.left -= len(p)
	return len(p), nil
}

func TestExpositionWriteError(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help").Inc()
	r.Counter("b_total", "help").Inc()
	if err := r.WritePrometheus(&errorWriter{left: 10}); err == nil {
		t.Error("write error must surface")
	}
}

// TestDebugMux drives the sesame-gcs observability routes through
// httptest: /metrics exposition, the pprof index and profile suite,
// and the JSON trace dump.
func TestDebugMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("sesame_test_total", "a test counter").Add(3)
	r.SetTrace(NewTraceRing(8))
	r.Trace().Record(TraceEvent{Tick: 4, UAV: "u1", Monitor: "safeml", Phase: "observe", Outcome: OutcomeOK})
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(body, "# TYPE sesame_test_total counter") ||
		!strings.Contains(body, "sesame_test_total 3") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}

	code, body, _ = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status=%d, body missing profile index", code)
	}
	if code, _, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
	if code, _, _ = get("/debug/pprof/symbol"); code != http.StatusOK {
		t.Errorf("/debug/pprof/symbol status = %d", code)
	}

	code, body, ctype = get("/debug/trace")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/debug/trace status=%d ctype=%q", code, ctype)
	}
	var events []TraceEvent
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/debug/trace not JSON: %v\n%s", err, body)
	}
	if len(events) != 1 || events[0].UAV != "u1" || events[0].Monitor != "safeml" {
		t.Errorf("/debug/trace events = %+v", events)
	}
}

// TestHandlerNilRegistry: a nil registry serves an empty, valid
// exposition (the disabled-observability endpoint contract).
func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Errorf("nil registry: status=%d body=%q", resp.StatusCode, body)
	}
}
