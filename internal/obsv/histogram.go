package obsv

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefLatencyBuckets is the default bucket layout for second-valued
// latency histograms: 1 µs to 100 ms in a 1-2.5-5 progression, wide
// enough for a monitor Observe on one end and a full fleet tick on the
// other.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1,
}

// Histogram is a fixed-bucket histogram with an exact observation sum
// and count. Observe is lock-free (atomic adds plus one CAS loop for
// the float sum) and allocation-free.
type Histogram struct {
	bounds  []float64 // ascending finite upper bounds
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// normalizeBounds copies, sorts and dedups bucket bounds, dropping
// non-finite entries (+Inf is implicit).
func normalizeBounds(bounds []float64) []float64 {
	out := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			dedup = append(dedup, b)
		}
	}
	return dedup
}

func newHistogram(bounds []float64) *Histogram {
	return newFromBounds(normalizeBounds(bounds))
}

// newFromBounds builds a histogram over already-normalized bounds
// (shared by HistogramVec so every series reuses one bounds slice).
func newFromBounds(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// NewHistogram returns a standalone (unregistered) histogram — the
// registry-free constructor used by tests and ad-hoc measurement.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records v. A value lands in the first bucket whose upper
// bound is >= v (Prometheus "le" semantics); values above every bound
// land in the implicit +Inf bucket. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (q in [0,1]) — a conservative estimate adequate for
// overhead tables. Observations in the +Inf bucket report the largest
// finite bound. Returns 0 with no observations or on nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// sample copies the histogram state into a HistogramSample.
func (h *Histogram) sample(name, label, value string) HistogramSample {
	s := HistogramSample{
		Name: name, Label: label, Value: value,
		Count: h.Count(), Sum: h.Sum(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
