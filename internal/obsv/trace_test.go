package obsv

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTraceRingWraparound fills a small ring past capacity and checks
// the retained window is exactly the newest events, oldest first.
func TestTraceRingWraparound(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		record   int
		wantLen  int
		first    uint64 // Tick of the oldest retained event
	}{
		{"empty", 4, 0, 0, 0},
		{"partial", 4, 3, 3, 0},
		{"exactly-full", 4, 4, 4, 0},
		{"wrap-once", 4, 5, 4, 1},
		{"wrap-many", 4, 11, 4, 7},
		{"clamped-capacity", 0, 3, 1, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ring := NewTraceRing(tc.capacity)
			for i := 0; i < tc.record; i++ {
				ring.Record(TraceEvent{Tick: uint64(i), Phase: "observe"})
			}
			if ring.Total() != uint64(tc.record) {
				t.Errorf("Total = %d, want %d", ring.Total(), tc.record)
			}
			snap := ring.Snapshot()
			if len(snap) != tc.wantLen {
				t.Fatalf("snapshot len = %d, want %d", len(snap), tc.wantLen)
			}
			for i, ev := range snap {
				if want := tc.first + uint64(i); ev.Tick != want {
					t.Errorf("snap[%d].Tick = %d, want %d", i, ev.Tick, want)
				}
			}
		})
	}
}

// TestTraceRingBudget checks the byte-budget sizing helper bounds the
// ring's capacity.
func TestTraceRingBudget(t *testing.T) {
	ring := TraceRingForBudget(1 << 20)
	if got, want := ring.Capacity(), (1<<20)/traceEventFootprint; got != want {
		t.Errorf("capacity = %d, want %d", got, want)
	}
	if tiny := TraceRingForBudget(1); tiny.Capacity() != 1 {
		t.Errorf("tiny budget capacity = %d, want 1 (clamped)", tiny.Capacity())
	}
}

// TestTraceRingConcurrency records from many goroutines; under -race
// this is the synchronization check. The invariant: total equals the
// records issued and the snapshot holds capacity events.
func TestTraceRingConcurrency(t *testing.T) {
	ring := NewTraceRing(64)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ring.Record(TraceEvent{
					Tick: uint64(i), UAV: fmt.Sprintf("u%d", w),
					Phase: "observe", Duration: time.Microsecond, Outcome: OutcomeOK,
				})
				if i%100 == 0 {
					_ = ring.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if ring.Total() != workers*per {
		t.Errorf("Total = %d, want %d", ring.Total(), workers*per)
	}
	if got := len(ring.Snapshot()); got != 64 {
		t.Errorf("snapshot len = %d, want 64", got)
	}
}

// TestRegistryTraceInstall checks SetTrace/Trace plumbing.
func TestRegistryTraceInstall(t *testing.T) {
	r := NewRegistry()
	if r.Trace() != nil {
		t.Error("fresh registry must have no trace ring")
	}
	ring := NewTraceRing(8)
	r.SetTrace(ring)
	if r.Trace() != ring {
		t.Error("installed ring not returned")
	}
	r.Trace().Record(TraceEvent{Tick: 1, Phase: "prepare", Outcome: OutcomeOK})
	if r.Trace().Total() != 1 {
		t.Error("record through registry accessor failed")
	}
}
