package flightrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Record is one decoded log entry.
type Record struct {
	Type    byte
	Payload []byte
}

// ErrCorrupt marks framing, bounds or checksum violations. Decoders
// wrap it so callers can distinguish corruption from I/O errors.
var ErrCorrupt = errors.New("flightrec: corrupt record")

// DecodeRecord parses the first framed record in buf and returns it
// together with the number of bytes consumed. It never panics and
// never reads past len(buf): corrupt or truncated input yields an
// error wrapping ErrCorrupt.
func DecodeRecord(buf []byte) (Record, int, error) {
	bodyLen, n := binary.Uvarint(buf)
	if n <= 0 {
		return Record{}, 0, fmt.Errorf("%w: truncated length prefix", ErrCorrupt)
	}
	if bodyLen == 0 {
		return Record{}, 0, fmt.Errorf("%w: empty body", ErrCorrupt)
	}
	if bodyLen > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: body of %d bytes exceeds cap", ErrCorrupt, bodyLen)
	}
	rest := buf[n:]
	if uint64(len(rest)) < bodyLen+crcLen {
		return Record{}, 0, fmt.Errorf("%w: %d body+crc bytes declared, %d available",
			ErrCorrupt, bodyLen+crcLen, len(rest))
	}
	body := rest[:bodyLen]
	want := binary.LittleEndian.Uint32(rest[bodyLen : bodyLen+crcLen])
	if got := crc32.ChecksumIEEE(body); got != want {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	return Record{Type: body[0], Payload: body[1:]}, n + int(bodyLen) + crcLen, nil
}

// Reader iterates the records of a recording directory across all its
// segments in order.
type Reader struct {
	dir    string
	header Header
	segIdx uint32
	buf    []byte
	off    int
	done   bool
}

// OpenReader opens a recording directory and decodes segment 0's
// header.
func OpenReader(dir string) (*Reader, error) {
	r := &Reader{dir: dir}
	if err := r.loadSegment(0); err != nil {
		return nil, err
	}
	rec, err := r.next()
	if err != nil {
		return nil, fmt.Errorf("flightrec: %s: reading header: %w", dir, err)
	}
	if rec.Type != TypeHeader {
		return nil, fmt.Errorf("%w: segment 0 does not start with a header", ErrCorrupt)
	}
	h, err := DecodeHeader(rec.Payload)
	if err != nil {
		return nil, err
	}
	if h.Version != Version {
		return nil, fmt.Errorf("flightrec: unsupported format version %d", h.Version)
	}
	r.header = h
	return r, nil
}

// Header returns the recording's identity header.
func (r *Reader) Header() Header { return r.header }

func (r *Reader) loadSegment(idx uint32) error {
	buf, err := os.ReadFile(filepath.Join(r.dir, SegmentName(idx)))
	if err != nil {
		return fmt.Errorf("flightrec: %w", err)
	}
	if len(buf) < len(Magic) || string(buf[:len(Magic)]) != Magic {
		return fmt.Errorf("%w: segment %d has no magic", ErrCorrupt, idx)
	}
	r.segIdx = idx
	r.buf = buf
	r.off = len(Magic)
	return nil
}

// next decodes the next record of the current segment, crossing into
// the following segment when exhausted. Segment headers after the
// first segment are validated against the recording identity and
// skipped.
func (r *Reader) next() (Record, error) {
	for {
		if r.done {
			return Record{}, io.EOF
		}
		if r.off >= len(r.buf) {
			if _, err := os.Stat(filepath.Join(r.dir, SegmentName(r.segIdx+1))); err != nil {
				r.done = true
				return Record{}, io.EOF
			}
			if err := r.loadSegment(r.segIdx + 1); err != nil {
				return Record{}, err
			}
			rec, err := r.nextInSegment()
			if err != nil {
				return Record{}, err
			}
			if rec.Type != TypeHeader {
				return Record{}, fmt.Errorf("%w: segment %d does not start with a header", ErrCorrupt, r.segIdx)
			}
			h, err := DecodeHeader(rec.Payload)
			if err != nil {
				return Record{}, err
			}
			if h.Seed != r.header.Seed || h.ConfigDigest != r.header.ConfigDigest {
				return Record{}, fmt.Errorf("%w: segment %d belongs to a different recording", ErrCorrupt, r.segIdx)
			}
			continue
		}
		return r.nextInSegment()
	}
}

func (r *Reader) nextInSegment() (Record, error) {
	rec, n, err := DecodeRecord(r.buf[r.off:])
	if err != nil {
		return Record{}, fmt.Errorf("segment %d offset %d: %w", r.segIdx, r.off, err)
	}
	r.off += n
	return rec, nil
}

// Next returns the next record, io.EOF after the last one. The first
// header record is already consumed by OpenReader; later segments'
// headers are validated and skipped transparently.
func (r *Reader) Next() (Record, error) { return r.next() }

// LatestSnapshot scans a recording for the newest snapshot with
// Tick <= maxTick (maxTick 0 means "any"). It returns the decoded
// snapshot and the recording header, or an error when the recording
// holds no usable snapshot.
func LatestSnapshot(dir string, maxTick uint64) (Snapshot, Header, error) {
	r, err := OpenReader(dir)
	if err != nil {
		return Snapshot{}, Header{}, err
	}
	var best Snapshot
	found := false
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A torn tail (crash mid-write) ends the usable prefix; any
			// snapshot before it is still good.
			break
		}
		if rec.Type != TypeSnapshot {
			continue
		}
		snap, err := DecodeSnapshot(rec.Payload)
		if err != nil {
			// The frame's CRC was valid, so the stream is still aligned:
			// this one checkpoint is unusable (e.g. written corrupt), not
			// the recording. Skip it and keep the earlier ones eligible.
			continue
		}
		if maxTick != 0 && snap.Tick > maxTick {
			continue
		}
		if !found || snap.Tick >= best.Tick {
			best = snap
			found = true
		}
	}
	if !found {
		return Snapshot{}, Header{}, fmt.Errorf("flightrec: %s holds no snapshot (tick cap %d)", dir, maxTick)
	}
	return best, r.Header(), nil
}
