package flightrec

import (
	"path/filepath"
	"testing"
)

// BenchmarkRecorderAppend measures the recording hot path: framing +
// CRC + write of one per-tick record. Steady state must not allocate —
// the scratch buffer is reused across appends.
func BenchmarkRecorderAppend(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "rec")
	rec, err := NewRecorder(dir, 1, "bench", 1000, Options{SegmentBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer rec.Close()
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Warm the scratch buffer so the timed loop sees steady state.
	if err := rec.RecordTick(payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rec.RecordTick(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotEncode measures checkpoint encoding for a
// representative state blob size.
func BenchmarkSnapshotEncode(b *testing.B) {
	state := make([]byte, 64<<10)
	for i := range state {
		state[i] = byte(i * 7)
	}
	s := Snapshot{Tick: 42, Time: 21.5, State: state}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf := EncodeSnapshot(s); len(buf) == 0 {
			b.Fatal("empty encode")
		}
	}
}
