package flightrec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Snapshot is one full platform checkpoint: the tick counter and
// simulation time it was taken at, plus the platform's opaque
// serialized state (flightrec does not interpret it — the platform
// owns its own schema, keeping the dependency arrow pointing here).
type Snapshot struct {
	Tick  uint64
	Time  float64
	State []byte
}

// EncodeSnapshot serializes s as a TypeSnapshot payload.
func EncodeSnapshot(s Snapshot) []byte {
	buf := make([]byte, 0, 24+len(s.State))
	buf = binary.AppendUvarint(buf, s.Tick)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Time))
	buf = binary.AppendUvarint(buf, uint64(len(s.State)))
	buf = append(buf, s.State...)
	return buf
}

// DecodeSnapshot parses a TypeSnapshot payload. It never panics and
// never reads past the payload: corrupt input yields an error wrapping
// ErrCorrupt.
func DecodeSnapshot(payload []byte) (Snapshot, error) {
	var s Snapshot
	tick, n := binary.Uvarint(payload)
	if n <= 0 {
		return s, fmt.Errorf("%w: snapshot: truncated tick", ErrCorrupt)
	}
	payload = payload[n:]
	if len(payload) < 8 {
		return s, fmt.Errorf("%w: snapshot: truncated time", ErrCorrupt)
	}
	t := math.Float64frombits(binary.LittleEndian.Uint64(payload))
	payload = payload[8:]
	slen, n := binary.Uvarint(payload)
	if n <= 0 {
		return s, fmt.Errorf("%w: snapshot: truncated state length", ErrCorrupt)
	}
	payload = payload[n:]
	if slen > MaxRecordBytes {
		return s, fmt.Errorf("%w: snapshot: state of %d bytes exceeds cap", ErrCorrupt, slen)
	}
	if slen != uint64(len(payload)) {
		return s, fmt.Errorf("%w: snapshot: state length %d != %d remaining bytes",
			ErrCorrupt, slen, len(payload))
	}
	s.Tick = tick
	s.Time = t
	s.State = append([]byte(nil), payload...)
	return s, nil
}

// Recorder is the platform-facing recording handle: a Writer plus the
// snapshot cadence. The platform appends typed records through it
// during the serial apply phase and asks ShouldSnapshot after each
// tick.
type Recorder struct {
	w *Writer
	// SnapshotEvery is the checkpoint cadence in ticks (>= 1).
	SnapshotEvery int
}

// NewRecorder opens a recording in dir identified by the run's seed
// and configuration digest, checkpointing every snapshotEvery ticks.
func NewRecorder(dir string, seed int64, configDigest string, snapshotEvery int, opts Options) (*Recorder, error) {
	if snapshotEvery < 1 {
		return nil, fmt.Errorf("flightrec: snapshot cadence %d < 1", snapshotEvery)
	}
	w, err := OpenWriter(dir, Header{
		Seed:          seed,
		ConfigDigest:  configDigest,
		SnapshotEvery: uint32(snapshotEvery),
	}, opts)
	if err != nil {
		return nil, err
	}
	return &Recorder{w: w, SnapshotEvery: snapshotEvery}, nil
}

// ShouldSnapshot reports whether a checkpoint is due after tick (the
// 1-based count of completed platform ticks).
func (r *Recorder) ShouldSnapshot(tick uint64) bool {
	return tick%uint64(r.SnapshotEvery) == 0
}

// RecordTick appends a per-tick telemetry summary.
func (r *Recorder) RecordTick(payload []byte) error { return r.w.Append(TypeTick, payload) }

// RecordEvent appends an EDDI event.
func (r *Recorder) RecordEvent(payload []byte) error { return r.w.Append(TypeEvent, payload) }

// RecordAdvice appends a fused adaptation decision.
func (r *Recorder) RecordAdvice(payload []byte) error { return r.w.Append(TypeAdvice, payload) }

// RecordFault appends a fault/attack/contingency marker.
func (r *Recorder) RecordFault(payload []byte) error { return r.w.Append(TypeFault, payload) }

// RecordBus appends a bus/mqtt traffic summary.
func (r *Recorder) RecordBus(payload []byte) error { return r.w.Append(TypeBus, payload) }

// RecordSnapshot appends a full platform checkpoint.
func (r *Recorder) RecordSnapshot(s Snapshot) error {
	payload := EncodeSnapshot(s)
	if r.w.opts.CorruptSnapshot != nil {
		payload = r.w.opts.CorruptSnapshot(payload)
	}
	return r.w.Append(TypeSnapshot, payload)
}

// Err returns the underlying writer's sticky error (nil while the
// recording is healthy).
func (r *Recorder) Err() error { return r.w.Err() }

// Sync flushes the recording to stable storage.
func (r *Recorder) Sync() error { return r.w.Sync() }

// Close closes the recording.
func (r *Recorder) Close() error { return r.w.Close() }
