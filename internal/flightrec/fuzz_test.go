package flightrec

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// frame builds a well-formed record frame for seeding the fuzzers.
func frame(typ byte, payload []byte) []byte {
	body := append([]byte{typ}, payload...)
	buf := binary.AppendUvarint(nil, uint64(len(body)))
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
}

func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame(TypeTick, []byte("tick")))
	f.Add(frame(TypeHeader, EncodeHeader(Header{Version: Version, Seed: -3, ConfigDigest: "d"})))
	f.Add(frame(TypeSnapshot, EncodeSnapshot(Snapshot{Tick: 9, Time: 1.5, State: []byte("s")})))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with %d bytes consumed", n)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A successful decode must re-encode to the exact consumed
		// prefix: framing is canonical up to varint padding, which the
		// writer never emits.
		if got := frame(rec.Type, rec.Payload); !bytes.Equal(got, data[:n]) {
			// Non-minimal varint length prefixes decode to the same
			// record but are not canonical; accept them as long as the
			// decoded body matches.
			rec2, n2, err2 := DecodeRecord(got)
			if err2 != nil || n2 != len(got) || rec2.Type != rec.Type || !bytes.Equal(rec2.Payload, rec.Payload) {
				t.Fatalf("re-encode mismatch: %v", err2)
			}
		}
	})
}

func FuzzDecodeSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeSnapshot(Snapshot{Tick: 1, Time: 2.5, State: []byte("state")}))
	f.Add(EncodeSnapshot(Snapshot{Tick: 0, Time: 0, State: nil}))
	f.Add([]byte{0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// Round trip must be exact for accepted inputs.
		again, err := DecodeSnapshot(EncodeSnapshot(s))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Tick != s.Tick || !bytes.Equal(again.State, s.State) {
			t.Fatalf("round trip mismatch: %+v vs %+v", again, s)
		}
		if again.Time != s.Time && !(s.Time != s.Time && again.Time != again.Time) {
			t.Fatalf("time mismatch: %v vs %v", again.Time, s.Time)
		}
	})
}
