package flightrec

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// hookFailing returns a FaultHook failing exactly the ops whose flag
// is currently set in fail.
func hookFailing(fail map[string]bool) func(string) error {
	return func(op string) error {
		if fail[op] {
			return errors.New("injected " + op + " failure")
		}
		return nil
	}
}

// TestCloseReportsFlushError pins the swallowed-error fix: a buffer
// that fails to flush during Close must surface that error even though
// the descriptor closes cleanly.
func TestCloseReportsFlushError(t *testing.T) {
	fail := map[string]bool{}
	w, err := OpenWriter(t.TempDir(), Header{Seed: 1}, Options{FaultHook: hookFailing(fail)})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(TypeTick, []byte("t")); err != nil {
		t.Fatal(err)
	}
	fail["write"] = true // the record above is still buffered
	err = w.Close()
	if err == nil || !strings.Contains(err.Error(), "injected write failure") {
		t.Fatalf("Close err = %v, want the flush failure", err)
	}
	if w.Err() == nil {
		t.Error("flush failure not sticky after Close")
	}
	// A second Close reports the sticky error instead of a nil no-op.
	if err := w.Close(); err == nil {
		t.Error("repeated Close swallowed the sticky error")
	}
}

// TestCloseAfterLatchedError pins the degraded-mode shutdown contract
// (regression for the errors.Join Close fix): once a write fault has
// latched the sticky error, Close must still release the descriptor —
// a mission that limped on without its recorder must not leak the
// segment file — and must return the joined error exactly once. The
// latched root cause surfaces through the first Close; repeats report
// the sticky error without re-closing anything.
func TestCloseAfterLatchedError(t *testing.T) {
	fail := map[string]bool{}
	w, err := OpenWriter(t.TempDir(), Header{Seed: 1}, Options{FaultHook: hookFailing(fail)})
	if err != nil {
		t.Fatal(err)
	}
	fail["write"] = true
	if err := w.Sync(); err == nil { // flushes the buffered header, latches
		t.Fatal("Sync succeeded with a failing write hook")
	}
	sticky := w.Err()
	if sticky == nil {
		t.Fatal("write failure not sticky")
	}

	f := w.file // descriptor the first Close must release
	first := w.Close()
	if !errors.Is(first, sticky) {
		t.Fatalf("Close = %v, want it to join the latched %v", first, sticky)
	}
	if err := f.Close(); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("segment descriptor still open after degraded Close: Close = %v", err)
	}

	// The joined error was delivered exactly once: a second Close is a
	// no-op that reports the sticky root cause, not a fresh join with a
	// double-close failure.
	second := w.Close()
	if second != sticky {
		t.Fatalf("second Close = %v, want the sticky %v unchanged", second, sticky)
	}
	if strings.Contains(second.Error(), "file already closed") {
		t.Fatalf("second Close re-closed the descriptor: %v", second)
	}
}

// TestFaultHookCreate models a full disk at segment creation.
func TestFaultHookCreate(t *testing.T) {
	fail := map[string]bool{"create": true}
	if _, err := OpenWriter(t.TempDir(), Header{Seed: 1}, Options{FaultHook: hookFailing(fail)}); err == nil ||
		!strings.Contains(err.Error(), "injected create failure") {
		t.Fatalf("OpenWriter err = %v, want injected create failure", err)
	}
	if _, err := NewRecorder(t.TempDir(), 1, "d", 10, Options{FaultHook: hookFailing(fail)}); err == nil {
		t.Fatal("NewRecorder succeeded with a failing create hook")
	}
}

// TestFaultHookSync pins sync injection: the error is reported but not
// sticky (a later fsync may succeed), matching os.File.Sync semantics.
func TestFaultHookSync(t *testing.T) {
	fail := map[string]bool{}
	w, err := OpenWriter(t.TempDir(), Header{Seed: 1}, Options{FaultHook: hookFailing(fail)})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fail["sync"] = true
	if err := w.Sync(); err == nil || !strings.Contains(err.Error(), "injected sync failure") {
		t.Fatalf("Sync err = %v, want injected sync failure", err)
	}
	if w.Err() != nil {
		t.Errorf("sync failure became sticky: %v", w.Err())
	}
	fail["sync"] = false
	if err := w.Sync(); err != nil {
		t.Errorf("recovered Sync err = %v", err)
	}
}

// TestWriteFaultIsSticky pins the degraded-mode contract the platform
// builds on: after the first failed flush, every further operation
// returns the same root cause without touching the disk again.
func TestWriteFaultIsSticky(t *testing.T) {
	fail := map[string]bool{}
	w, err := OpenWriter(t.TempDir(), Header{Seed: 1}, Options{FaultHook: hookFailing(fail)})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fail["write"] = true
	if err := w.Sync(); err == nil { // forces a flush of the buffered header
		t.Fatal("Sync succeeded with a failing write hook")
	}
	first := w.Err()
	if first == nil {
		t.Fatal("write failure not sticky")
	}
	if err := w.Append(TypeTick, []byte("t")); !errors.Is(err, first) && err != first {
		t.Errorf("Append after failure = %v, want the sticky %v", err, first)
	}
	if err := w.Sync(); err != first {
		t.Errorf("Sync after failure = %v, want the sticky %v", err, first)
	}
}

// TestCorruptSnapshotSkippedOnResume drives the corrupt-checkpoint
// path end to end: a truncated snapshot payload is framed with a valid
// CRC, so the reader stays aligned, rejects that checkpoint and falls
// back to the newest intact one.
func TestCorruptSnapshotSkippedOnResume(t *testing.T) {
	dir := t.TempDir()
	corrupt := false
	rec, err := NewRecorder(dir, 1, "d", 10, Options{
		CorruptSnapshot: func(p []byte) []byte {
			if !corrupt {
				return p
			}
			return p[:len(p)/2]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	good := Snapshot{Tick: 10, Time: 10, State: []byte(`{"ok":true}`)}
	if err := rec.RecordSnapshot(good); err != nil {
		t.Fatal(err)
	}
	corrupt = true
	if err := rec.RecordSnapshot(Snapshot{Tick: 20, Time: 20, State: []byte(`{"ok":false}`)}); err != nil {
		t.Fatal(err)
	}
	corrupt = false
	if err := rec.RecordTick([]byte("after")); err != nil { // stream stays aligned past the corrupt frame
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	snap, _, err := LatestSnapshot(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Tick != good.Tick || string(snap.State) != string(good.State) {
		t.Fatalf("LatestSnapshot = tick %d, want the intact checkpoint at tick %d", snap.Tick, good.Tick)
	}
}
