// Package flightrec is the black-box flight recorder: a dependency-free
// append-only binary segment log plus a snapshot codec, giving every
// mission a durable record that can be resumed after a crash and
// replayed bit-identically (the paper's dependability-evidence
// requirement: EDDIs must justify, after the fact, why the fleet
// degraded, returned or kept flying).
//
// On-disk format, little-endian throughout:
//
//	segment file = magic "SESAREC1" ‖ record*
//	record       = uvarint n ‖ body[n] ‖ crc32(body) (4 bytes LE)
//	body         = type byte ‖ payload
//
// The first record of every segment is a TypeHeader carrying the run's
// seed, config digest and snapshot cadence, so any single segment is
// self-describing. Segments rotate at a size cap and are numbered
// seg-00000000.rec, seg-00000001.rec, ... within the recording
// directory.
package flightrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Record types.
const (
	// TypeHeader is the self-describing first record of each segment.
	TypeHeader byte = 1
	// TypeTick is a per-tick platform telemetry summary.
	TypeTick byte = 2
	// TypeEvent is an EDDI event (safety/security/perception/risk).
	TypeEvent byte = 3
	// TypeAdvice is a monitor adaptation proposal that won fusion.
	TypeAdvice byte = 4
	// TypeFault is a fault/attack injection or contingency activation.
	TypeFault byte = 5
	// TypeSnapshot is a full platform state checkpoint.
	TypeSnapshot byte = 6
	// TypeBus is a bus/mqtt traffic summary.
	TypeBus byte = 7
)

// Magic starts every segment file.
const Magic = "SESAREC1"

// Version is the current format version, stamped into headers.
const Version = 1

// MaxRecordBytes bounds a single record body; decoders reject larger
// length prefixes instead of over-allocating on corrupt input.
const MaxRecordBytes = 16 << 20

// DefaultSegmentBytes is the rotation size cap.
const DefaultSegmentBytes = 4 << 20

// Header identifies a recording: decoders refuse to resume or replay
// against a run with a different seed or configuration digest.
type Header struct {
	Version       uint32 `json:"version"`
	Segment       uint32 `json:"segment"`
	Seed          int64  `json:"seed"`
	ConfigDigest  string `json:"config_digest"`
	SnapshotEvery uint32 `json:"snapshot_every"`
}

// EncodeHeader serializes h as a TypeHeader payload.
func EncodeHeader(h Header) []byte {
	buf := make([]byte, 0, 32+len(h.ConfigDigest))
	buf = binary.AppendUvarint(buf, uint64(h.Version))
	buf = binary.AppendUvarint(buf, uint64(h.Segment))
	buf = binary.AppendVarint(buf, h.Seed)
	buf = binary.AppendUvarint(buf, uint64(len(h.ConfigDigest)))
	buf = append(buf, h.ConfigDigest...)
	buf = binary.AppendUvarint(buf, uint64(h.SnapshotEvery))
	return buf
}

// DecodeHeader parses a TypeHeader payload.
func DecodeHeader(payload []byte) (Header, error) {
	var h Header
	version, n := binary.Uvarint(payload)
	if n <= 0 {
		return h, errors.New("flightrec: header: truncated version")
	}
	payload = payload[n:]
	segment, n := binary.Uvarint(payload)
	if n <= 0 {
		return h, errors.New("flightrec: header: truncated segment index")
	}
	payload = payload[n:]
	seed, n := binary.Varint(payload)
	if n <= 0 {
		return h, errors.New("flightrec: header: truncated seed")
	}
	payload = payload[n:]
	dlen, n := binary.Uvarint(payload)
	if n <= 0 {
		return h, errors.New("flightrec: header: truncated digest length")
	}
	payload = payload[n:]
	if dlen > uint64(len(payload)) {
		return h, fmt.Errorf("flightrec: header: digest length %d exceeds %d remaining bytes", dlen, len(payload))
	}
	digest := string(payload[:dlen])
	payload = payload[dlen:]
	every, n := binary.Uvarint(payload)
	if n <= 0 {
		return h, errors.New("flightrec: header: truncated snapshot cadence")
	}
	if version > uint64(^uint32(0)) || segment > uint64(^uint32(0)) || every > uint64(^uint32(0)) {
		return h, errors.New("flightrec: header: field out of range")
	}
	h.Version = uint32(version)
	h.Segment = uint32(segment)
	h.Seed = seed
	h.ConfigDigest = digest
	h.SnapshotEvery = uint32(every)
	return h, nil
}

// Options tunes a Writer.
type Options struct {
	// SegmentBytes is the rotation size cap (default
	// DefaultSegmentBytes). A segment always holds at least its header
	// and one record, so oversized records still land somewhere.
	SegmentBytes int64

	// FaultHook, if set, is consulted immediately before each physical
	// file operation — op is "create", "write" or "sync" — and a
	// non-nil return is treated exactly as that operation failing
	// (chaos/fault-injection seam; never set in production use).
	FaultHook func(op string) error

	// CorruptSnapshot, if set, may rewrite a snapshot payload before it
	// is framed (chaos seam for checkpoint-corruption testing): the
	// returned bytes are recorded in place of the checkpoint. The frame
	// CRC covers the corrupted bytes, so readers see a well-framed
	// record whose content no longer decodes.
	CorruptSnapshot func(payload []byte) []byte
}

// Writer is the append-only segment log writer. Append is the
// recording hot path: records are framed into one reused in-memory
// buffer, so steady-state appends perform no allocation and no
// syscall — the buffer is written out when it passes writeBufBytes,
// on rotation, and on Sync/Close.
type Writer struct {
	dir     string
	header  Header
	opts    Options
	file    *os.File
	segSize int64
	segIdx  uint32
	buf     []byte
	err     error
}

// writeBufBytes is the flush threshold for the in-memory write buffer.
const writeBufBytes = 64 << 10

// SegmentName returns the file name of segment idx.
func SegmentName(idx uint32) string {
	return fmt.Sprintf("seg-%08d.rec", idx)
}

// OpenWriter creates a recording directory (if needed) and starts
// segment 0. An existing recording in dir is an error: recordings are
// immutable evidence, never silently appended to.
func OpenWriter(dir string, h Header, opts Options) (*Writer, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("flightrec: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, SegmentName(0))); err == nil {
		return nil, fmt.Errorf("flightrec: %s already holds a recording", dir)
	}
	h.Version = Version
	w := &Writer{dir: dir, header: h, opts: opts, buf: make([]byte, 0, writeBufBytes+4096)}
	if err := w.openSegment(0); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *Writer) openSegment(idx uint32) error {
	if w.opts.FaultHook != nil {
		if err := w.opts.FaultHook("create"); err != nil {
			return fmt.Errorf("flightrec: %w", err)
		}
	}
	f, err := os.OpenFile(filepath.Join(w.dir, SegmentName(idx)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("flightrec: %w", err)
	}
	w.file = f
	w.segIdx = idx
	w.segSize = int64(len(Magic))
	w.buf = append(w.buf, Magic...)
	h := w.header
	h.Segment = idx
	return w.Append(TypeHeader, EncodeHeader(h))
}

// Append frames one record and writes it to the current segment,
// rotating first when the size cap is reached.
func (w *Writer) Append(typ byte, payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.file == nil {
		return errors.New("flightrec: append to closed writer")
	}
	if len(payload) >= MaxRecordBytes {
		return fmt.Errorf("flightrec: record of %d bytes exceeds cap", len(payload))
	}
	bodyLen := 1 + len(payload)
	frameLen := int64(binary.MaxVarintLen64 + bodyLen + crcLen)
	if typ != TypeHeader && w.segSize+frameLen > w.opts.SegmentBytes && w.segSize > int64(len(Magic)) {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	start := len(w.buf)
	w.buf = AppendFrame(w.buf, typ, payload)
	w.segSize += int64(len(w.buf) - start)
	if len(w.buf) >= writeBufBytes {
		return w.flush()
	}
	return nil
}

const crcLen = 4

// AppendFrame appends one framed record — uvarint length ‖ type ‖
// payload ‖ crc32(body) — to buf and returns the extended slice. This
// is the single framing code path: the segment Writer uses it for
// every record, and external append-only logs (the campaign engine's
// completed-run journal) reuse it so DecodeRecord reads them all.
func AppendFrame(buf []byte, typ byte, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(1+len(payload)))
	bodyStart := len(buf)
	buf = append(buf, typ)
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[bodyStart:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// flush writes the buffered frames to the current segment file.
func (w *Writer) flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 {
		return nil
	}
	var err error
	if w.opts.FaultHook != nil {
		err = w.opts.FaultHook("write")
	}
	if err == nil {
		_, err = w.file.Write(w.buf)
	}
	w.buf = w.buf[:0]
	if err != nil {
		w.err = fmt.Errorf("flightrec: %w", err)
		return w.err
	}
	return nil
}

// rotate flushes and closes the current segment and opens the next.
func (w *Writer) rotate() error {
	if err := w.flush(); err != nil {
		return err
	}
	if err := w.file.Close(); err != nil {
		w.err = fmt.Errorf("flightrec: %w", err)
		return w.err
	}
	return w.openSegment(w.segIdx + 1)
}

// Sync flushes the buffer and the current segment to stable storage.
func (w *Writer) Sync() error {
	if w.err != nil {
		return w.err
	}
	if w.file == nil {
		return nil
	}
	if err := w.flush(); err != nil {
		return err
	}
	if w.opts.FaultHook != nil {
		if err := w.opts.FaultHook("sync"); err != nil {
			return fmt.Errorf("flightrec: %w", err)
		}
	}
	return w.file.Sync()
}

// Segments returns how many segments the writer has opened so far.
func (w *Writer) Segments() int { return int(w.segIdx) + 1 }

// Err returns the writer's sticky error: the first append/flush
// failure, after which every further operation refuses to run. Callers
// that keep a mission going on recorder failure (degraded mode) poll
// this to surface the root cause.
func (w *Writer) Err() error { return w.err }

// Close flushes and closes the current segment. Both the final flush
// error and the file close error are reported: a torn last buffer is
// not swallowed just because the descriptor closed cleanly.
func (w *Writer) Close() error {
	if w.file == nil {
		return w.err
	}
	flushErr := w.flush()
	closeErr := w.file.Close()
	w.file = nil
	if closeErr != nil {
		closeErr = fmt.Errorf("flightrec: %w", closeErr)
	}
	if w.err == nil && closeErr != nil {
		w.err = closeErr
	}
	return errors.Join(flushErr, closeErr)
}
