package flightrec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Version: Version, Segment: 7, Seed: -42, ConfigDigest: "sha256:abc", SnapshotEvery: 25}
	got, err := DecodeHeader(EncodeHeader(h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
}

// TestAppendFrameRoundTrip pins the exported framing helper (shared
// with the campaign journal) to DecodeRecord: frames appended back to
// back decode to the same records, and a corrupted byte is detected.
func TestAppendFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xa5}, 300), // multi-byte uvarint length
	}
	var buf []byte
	for i, p := range payloads {
		buf = AppendFrame(buf, byte(i+1), p)
	}
	off := 0
	for i, p := range payloads {
		rec, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Type != byte(i+1) || !bytes.Equal(rec.Payload, p) {
			t.Fatalf("record %d: got type %d payload %d bytes", i, rec.Type, len(rec.Payload))
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}

	buf[1] ^= 0x40 // flip a bit inside the first record's body
	if _, _, err := DecodeRecord(buf); err == nil {
		t.Fatal("corrupted frame decoded without error")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := Snapshot{Tick: 123, Time: 45.625, State: []byte(`{"hello":"world"}`)}
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tick != s.Tick || got.Time != s.Time || !bytes.Equal(got.State, s.State) {
		t.Fatalf("round trip: got %+v want %+v", got, s)
	}
}

func TestWriteReadAcrossRotation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rec")
	w, err := OpenWriter(dir, Header{Seed: 99, ConfigDigest: "cfg", SnapshotEvery: 10},
		Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 50; i++ {
		typ := TypeTick
		if i%10 == 9 {
			typ = TypeEvent
		}
		payload := []byte(fmt.Sprintf("record-%02d-%s", i, bytes.Repeat([]byte("x"), 20)))
		if err := w.Append(typ, payload); err != nil {
			t.Fatal(err)
		}
		want = append(want, Record{Type: typ, Payload: payload})
	}
	if w.Segments() < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", w.Segments())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := r.Header()
	if h.Seed != 99 || h.ConfigDigest != "cfg" || h.SnapshotEvery != 10 || h.Version != Version {
		t.Fatalf("header: %+v", h)
	}
	var got []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d: got %v %q want %v %q",
				i, got[i].Type, got[i].Payload, want[i].Type, want[i].Payload)
		}
	}
}

func TestOpenWriterRefusesExistingRecording(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rec")
	w, err := OpenWriter(dir, Header{Seed: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := OpenWriter(dir, Header{Seed: 1}, Options{}); err == nil {
		t.Fatal("expected error reopening an existing recording")
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rec")
	w, err := OpenWriter(dir, Header{Seed: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(TypeTick, make([]byte, MaxRecordBytes)); err == nil {
		t.Fatal("expected oversized record to be rejected")
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	valid := func() []byte {
		dir := filepath.Join(t.TempDir(), "rec")
		w, err := OpenWriter(dir, Header{Seed: 5}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(TypeTick, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		w.Close()
		buf, err := os.ReadFile(filepath.Join(dir, SegmentName(0)))
		if err != nil {
			t.Fatal(err)
		}
		return buf[len(Magic):]
	}()

	// The full stream decodes: header record then the tick record.
	rec, n, err := DecodeRecord(valid)
	if err != nil || rec.Type != TypeHeader {
		t.Fatalf("header record: %v %v", rec, err)
	}
	tick, _, err := DecodeRecord(valid[n:])
	if err != nil || tick.Type != TypeTick || string(tick.Payload) != "payload" {
		t.Fatalf("tick record: %v %v", tick, err)
	}

	cases := map[string][]byte{
		"empty":     {},
		"truncated": valid[n : len(valid)-3],
		"zero body": {0x00},
		"huge len":  {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xff // corrupt the last record's CRC
	cases["bad crc"] = flipped[n:]
	for name, buf := range cases {
		if _, _, err := DecodeRecord(buf); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, SegmentName(0)), []byte("NOTAMAGIC"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestLatestSnapshot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rec")
	rec, err := NewRecorder(dir, 7, "cfg", 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for tick := uint64(1); tick <= 20; tick++ {
		if err := rec.RecordTick([]byte("t")); err != nil {
			t.Fatal(err)
		}
		if rec.ShouldSnapshot(tick) {
			s := Snapshot{Tick: tick, Time: float64(tick) / 2, State: []byte(fmt.Sprintf("state@%d", tick))}
			if err := rec.RecordSnapshot(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	snap, h, err := LatestSnapshot(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Seed != 7 || h.ConfigDigest != "cfg" {
		t.Fatalf("header: %+v", h)
	}
	if snap.Tick != 20 || string(snap.State) != "state@20" {
		t.Fatalf("latest: %+v", snap)
	}

	snap, _, err = LatestSnapshot(dir, 12)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Tick != 10 {
		t.Fatalf("capped latest: tick %d, want 10", snap.Tick)
	}

	if _, _, err := LatestSnapshot(dir, 3); err == nil {
		t.Fatal("expected error when no snapshot fits the cap")
	}
}

func TestLatestSnapshotSurvivesTornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rec")
	rec, err := NewRecorder(dir, 7, "cfg", 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.RecordSnapshot(Snapshot{Tick: 1, Time: 0.5, State: []byte("good")}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage half-record at the tail.
	f, err := os.OpenFile(filepath.Join(dir, SegmentName(0)), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, TypeTick, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	snap, _, err := LatestSnapshot(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Tick != 1 || string(snap.State) != "good" {
		t.Fatalf("snapshot after torn tail: %+v", snap)
	}
}

func TestNewRecorderRejectsBadCadence(t *testing.T) {
	if _, err := NewRecorder(t.TempDir(), 1, "cfg", 0, Options{}); err == nil {
		t.Fatal("expected cadence error")
	}
}

// TestRecorderTypedRecords drives every typed append through a
// Recorder and reads the stream back in order.
func TestRecorderTypedRecords(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(dir, 5, "sha256:abc", 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		typ     byte
		append  func([]byte) error
		payload string
	}{
		{TypeTick, rec.RecordTick, `{"tick":1}`},
		{TypeEvent, rec.RecordEvent, `{"kind":"safety"}`},
		{TypeAdvice, rec.RecordAdvice, `{"action":"hold"}`},
		{TypeFault, rec.RecordFault, `{"kind":"spoof"}`},
		{TypeBus, rec.RecordBus, `{"published":3}`},
	}
	for _, s := range steps {
		if err := s.append([]byte(s.payload)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.RecordSnapshot(Snapshot{Tick: 2, Time: 2, State: []byte("{}")}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h := r.Header(); h.Seed != 5 || h.ConfigDigest != "sha256:abc" || h.SnapshotEvery != 2 {
		t.Fatalf("header round trip: %+v", h)
	}
	for i, s := range steps {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != s.typ || string(got.Payload) != s.payload {
			t.Fatalf("record %d: type %d payload %q, want %d %q", i, got.Type, got.Payload, s.typ, s.payload)
		}
	}
	got, err := r.Next()
	if err != nil || got.Type != TypeSnapshot {
		t.Fatalf("snapshot record: type %d err %v", got.Type, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
}

// TestRecorderShouldSnapshot pins the cadence arithmetic.
func TestRecorderShouldSnapshot(t *testing.T) {
	rec, err := NewRecorder(t.TempDir(), 1, "d", 25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	for _, tc := range []struct {
		tick uint64
		want bool
	}{{1, false}, {24, false}, {25, true}, {26, false}, {50, true}} {
		if got := rec.ShouldSnapshot(tc.tick); got != tc.want {
			t.Errorf("ShouldSnapshot(%d) = %v, want %v", tc.tick, got, tc.want)
		}
	}
}

// TestNewRecorderRefusesExisting proves a Recorder never appends to
// an existing recording.
func TestNewRecorderRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(dir, 1, "d", 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Close()
	if _, err := NewRecorder(dir, 1, "d", 10, Options{}); err == nil {
		t.Error("second recorder on the same directory must fail")
	}
}

// TestWriterClosedAndSync pins the writer lifecycle edges.
func TestWriterClosedAndSync(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWriter(dir, Header{Seed: 1, ConfigDigest: "d"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Segments() != 1 {
		t.Fatalf("segments = %d, want 1", w.Segments())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(TypeTick, []byte("x")); err == nil {
		t.Error("append after close must fail")
	}
	if err := w.Sync(); err != nil {
		t.Errorf("sync after close is a no-op, got %v", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close is a no-op, got %v", err)
	}
}

// TestDecodeHeaderTruncations feeds every strict prefix of a valid
// header to the decoder; each must fail, none may panic.
func TestDecodeHeaderTruncations(t *testing.T) {
	full := EncodeHeader(Header{Version: 1, Segment: 2, Seed: -7, ConfigDigest: "sha256:xyz", SnapshotEvery: 50})
	if _, err := DecodeHeader(full); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(full); i++ {
		if _, err := DecodeHeader(full[:i]); err == nil {
			t.Errorf("prefix of %d bytes decoded without error", i)
		}
	}
}

// TestDecodeHeaderOutOfRange rejects fields beyond uint32.
func TestDecodeHeaderOutOfRange(t *testing.T) {
	var buf []byte
	buf = binary.AppendUvarint(buf, 1<<40) // version
	buf = binary.AppendUvarint(buf, 0)     // segment
	buf = binary.AppendVarint(buf, 1)      // seed
	buf = binary.AppendUvarint(buf, 0)     // digest length
	buf = binary.AppendUvarint(buf, 1)     // cadence
	if _, err := DecodeHeader(buf); err == nil {
		t.Error("version beyond uint32 must fail")
	}
}

// TestDecodeSnapshotErrors pins the snapshot decoder's corrupt-input
// branches.
func TestDecodeSnapshotErrors(t *testing.T) {
	full := EncodeSnapshot(Snapshot{Tick: 9, Time: 3.5, State: []byte("state")})
	for i := 0; i < len(full); i++ {
		if _, err := DecodeSnapshot(full[:i]); err == nil {
			t.Errorf("prefix of %d bytes decoded without error", i)
		}
	}
	var huge []byte
	huge = binary.AppendUvarint(huge, 1)
	huge = binary.LittleEndian.AppendUint64(huge, 0)
	huge = binary.AppendUvarint(huge, MaxRecordBytes+1)
	if _, err := DecodeSnapshot(huge); err == nil {
		t.Error("state length beyond cap must fail")
	}
}

// TestReaderRejectsForeignSegment proves segment headers are checked
// against the recording identity when the reader crosses segments.
func TestReaderRejectsForeignSegment(t *testing.T) {
	small := Options{SegmentBytes: 96} // force rotation quickly
	mk := func(seed int64) string {
		dir := t.TempDir()
		w, err := OpenWriter(dir, Header{Seed: seed, ConfigDigest: "d"}, small)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := w.Append(TypeTick, bytes.Repeat([]byte("x"), 40)); err != nil {
				t.Fatal(err)
			}
		}
		if w.Segments() < 2 {
			t.Fatalf("recording did not rotate: %d segment(s)", w.Segments())
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	a, b := mk(1), mk(2)
	foreign, err := os.ReadFile(filepath.Join(b, SegmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(a, SegmentName(1)), foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(a)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err = r.Next(); err != nil {
			break
		}
	}
	if err == io.EOF || !errors.Is(err, ErrCorrupt) {
		t.Errorf("foreign segment must surface ErrCorrupt, got %v", err)
	}
}

// TestOpenReaderErrors pins the open-time validation branches.
func TestOpenReaderErrors(t *testing.T) {
	if _, err := OpenReader(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing directory must fail")
	}

	// Segment 0 whose first record is not a header.
	dir := t.TempDir()
	var body []byte
	body = append(body, TypeTick)
	body = append(body, 'x')
	var frame []byte
	frame = binary.AppendUvarint(frame, uint64(len(body)))
	frame = append(frame, body...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(body))
	if err := os.WriteFile(filepath.Join(dir, SegmentName(0)), append([]byte(Magic), frame...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(dir); err == nil {
		t.Error("headerless segment 0 must fail")
	}

	// Unsupported format version.
	dir2 := t.TempDir()
	hbody := append([]byte{TypeHeader}, EncodeHeader(Header{Version: Version + 1, Seed: 1, ConfigDigest: "d"})...)
	var hframe []byte
	hframe = binary.AppendUvarint(hframe, uint64(len(hbody)))
	hframe = append(hframe, hbody...)
	hframe = binary.LittleEndian.AppendUint32(hframe, crc32.ChecksumIEEE(hbody))
	if err := os.WriteFile(filepath.Join(dir2, SegmentName(0)), append([]byte(Magic), hframe...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(dir2); err == nil {
		t.Error("future format version must fail")
	}
}

// TestLatestSnapshotEmptyRecording errors when no checkpoint exists.
func TestLatestSnapshotEmptyRecording(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(dir, 1, "d", 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.RecordTick([]byte("{}")); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LatestSnapshot(dir, 0); err == nil {
		t.Error("recording without snapshots must fail")
	}
}
