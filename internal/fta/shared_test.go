package fta

import (
	"math"
	"testing"
	"testing/quick"
)

// sharedPowerTree builds top = AND(OR(power, genA), OR(power, genB)):
// the classic shared-event example where gate arithmetic is wrong.
func sharedPowerTree(t *testing.T, pPower, pA, pB float64) (*SharedTree, Event) {
	t.Helper()
	power, err := NewFixedEvent("power", pPower)
	if err != nil {
		t.Fatal(err)
	}
	genA, _ := NewFixedEvent("genA", pA)
	genB, _ := NewFixedEvent("genB", pB)
	left, _ := NewGate("left", OR, power, genA)
	right, _ := NewGate("right", OR, power, genB)
	top, _ := NewGate("top", AND, left, right)
	st, err := NewSharedTree(top)
	if err != nil {
		t.Fatal(err)
	}
	return st, top
}

func TestSharedTreeExactVsGateArithmetic(t *testing.T) {
	// Exact: P(top) = p + (1-p) pA pB  (power alone fails both sides).
	p, pA, pB := 0.1, 0.2, 0.3
	st, top := sharedPowerTree(t, p, pA, pB)
	want := p + (1-p)*pA*pB
	got, err := st.Probability(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("shared exact = %v, want %v", got, want)
	}
	// Gate arithmetic (treating the two power references as
	// independent) underestimates here.
	naive, err := top.Probability(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if naive >= got {
		t.Fatalf("naive %v should underestimate exact %v for shared events", naive, got)
	}
}

func TestSharedTreeRejectsDegenerate(t *testing.T) {
	if _, err := NewSharedTree(nil); err == nil {
		t.Fatal("nil top must fail")
	}
}

func TestSharedTreeCutSets(t *testing.T) {
	st, _ := sharedPowerTree(t, 0.1, 0.2, 0.3)
	mcs := st.MinimalCutSets()
	// {power} and {genA, genB}.
	if len(mcs) != 2 {
		t.Fatalf("MCS = %v", mcs)
	}
	if len(mcs[0]) != 1 || mcs[0][0] != "power" {
		t.Fatalf("MCS[0] = %v", mcs[0])
	}
	if len(st.BasicEvents()) != 3 {
		t.Fatalf("BasicEvents = %v", st.BasicEvents())
	}
}

func TestSharedTreeMatchesPlainTreeWhenNoSharing(t *testing.T) {
	// Without shared events both evaluators agree.
	f := func(p1Raw, p2Raw, p3Raw float64) bool {
		ps := []float64{
			math.Mod(math.Abs(p1Raw), 1),
			math.Mod(math.Abs(p2Raw), 1),
			math.Mod(math.Abs(p3Raw), 1),
		}
		a, _ := NewFixedEvent("a", ps[0])
		b, _ := NewFixedEvent("b", ps[1])
		c, _ := NewFixedEvent("c", ps[2])
		and, _ := NewGate("ab", AND, a, b)
		top, _ := NewGate("top", OR, and, c)
		plain, err := NewTree(top)
		if err != nil {
			return false
		}
		shared, err := NewSharedTree(top)
		if err != nil {
			return false
		}
		p1, err1 := plain.Probability(0)
		p2, err2 := shared.Probability(0)
		return err1 == nil && err2 == nil && math.Abs(p1-p2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRareEventUpperBound(t *testing.T) {
	st, _ := sharedPowerTree(t, 0.01, 0.02, 0.03)
	exact, err := st.Probability(0)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := st.RareEventUpperBound(0)
	if err != nil {
		t.Fatal(err)
	}
	if bound < exact {
		t.Fatalf("rare-event bound %v below exact %v", bound, exact)
	}
	// For small probabilities the bound is tight.
	if bound > exact*1.05 {
		t.Fatalf("bound %v too loose vs exact %v", bound, exact)
	}
}

func TestSharedTreeBudget(t *testing.T) {
	// A 2-of-N voter over many leaves explodes the cut-set count; the
	// constructor must refuse rather than hang.
	var leaves []Event
	for i := 0; i < 10; i++ {
		e, _ := NewFixedEvent(string(rune('a'+i)), 0.1)
		leaves = append(leaves, e)
	}
	v, _ := NewVoterGate("v", 2, leaves...) // C(10,2) = 45 > budget
	if _, err := NewSharedTree(v); err == nil {
		t.Fatal("oversized cut-set expansion must be refused")
	}
}

func TestSharedTreeTimeDependent(t *testing.T) {
	power, _ := NewBasicEvent("power", 1e-4)
	genA, _ := NewBasicEvent("genA", 2e-4)
	genB, _ := NewBasicEvent("genB", 2e-4)
	left, _ := NewGate("left", OR, power, genA)
	right, _ := NewGate("right", OR, power, genB)
	top, _ := NewGate("top", AND, left, right)
	st, err := NewSharedTree(top)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, ts := range []float64{0, 100, 1000, 10000} {
		p, err := st.Probability(ts)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev || p < 0 || p > 1 {
			t.Fatalf("t=%v: p=%v prev=%v", ts, p, prev)
		}
		prev = p
	}
}

func BenchmarkSharedTreeProbability(b *testing.B) {
	power, _ := NewFixedEvent("power", 0.01)
	genA, _ := NewFixedEvent("genA", 0.02)
	genB, _ := NewFixedEvent("genB", 0.03)
	left, _ := NewGate("left", OR, power, genA)
	right, _ := NewGate("right", OR, power, genB)
	top, _ := NewGate("top", AND, left, right)
	st, _ := NewSharedTree(top)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Probability(0); err != nil {
			b.Fatal(err)
		}
	}
}
