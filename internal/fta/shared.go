package fta

// Support for fault trees with SHARED basic events — the same physical
// component feeding several gates. Plain gate arithmetic is wrong
// there (it treats each occurrence as independent), so SharedTree
// evaluates the top event exactly over the minimal cut sets by
// inclusion–exclusion, which is feasible for the tree sizes runtime
// EDDIs carry (tens of cut sets).

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// maxSharedCutSets bounds the inclusion–exclusion expansion
// (2^n terms).
const maxSharedCutSets = 22

// SharedTree is a fault tree that may reference the same basic event
// from multiple gates.
type SharedTree struct {
	top    Event
	leaves []string // unique leaf names, sorted
	mcs    [][]string
}

// NewSharedTree validates the tree and precomputes its minimal cut
// sets. Unlike NewTree, duplicate leaf references are allowed — they
// are the point — but the number of minimal cut sets must stay within
// the inclusion–exclusion budget.
func NewSharedTree(top Event) (*SharedTree, error) {
	if top == nil {
		return nil, errors.New("fta: nil top event")
	}
	leaves := top.Leaves(nil)
	uniq := map[string]bool{}
	for _, l := range leaves {
		uniq[l] = true
	}
	names := make([]string, 0, len(uniq))
	for l := range uniq {
		names = append(names, l)
	}
	sort.Strings(names)
	st := &SharedTree{top: top, leaves: names}
	st.mcs = minimizeCutSets(top.CutSets())
	if len(st.mcs) == 0 {
		return nil, errors.New("fta: tree has no cut sets")
	}
	if len(st.mcs) > maxSharedCutSets {
		return nil, fmt.Errorf("fta: %d minimal cut sets exceed the inclusion-exclusion budget (%d)",
			len(st.mcs), maxSharedCutSets)
	}
	return st, nil
}

// minimizeCutSets deduplicates and removes supersets.
func minimizeCutSets(sets [][]string) [][]string {
	uniq := make(map[string][]string, len(sets))
	for _, s := range sets {
		uniq[strings.Join(s, "\x00")] = s
	}
	var all [][]string
	for _, s := range uniq {
		all = append(all, s)
	}
	sort.Slice(all, func(i, j int) bool {
		if len(all[i]) != len(all[j]) {
			return len(all[i]) < len(all[j])
		}
		return strings.Join(all[i], ",") < strings.Join(all[j], ",")
	})
	var minimal [][]string
	for _, s := range all {
		redundant := false
		for _, m := range minimal {
			if isSubset(m, s) {
				redundant = true
				break
			}
		}
		if !redundant {
			minimal = append(minimal, s)
		}
	}
	return minimal
}

// BasicEvents returns the unique leaf names.
func (st *SharedTree) BasicEvents() []string { return append([]string(nil), st.leaves...) }

// MinimalCutSets returns the precomputed minimal cut sets.
func (st *SharedTree) MinimalCutSets() [][]string {
	out := make([][]string, len(st.mcs))
	for i, s := range st.mcs {
		out[i] = append([]string(nil), s...)
	}
	return out
}

// leafProbabilities evaluates every unique leaf once at time t.
func (st *SharedTree) leafProbabilities(t float64) (map[string]float64, error) {
	probs := make(map[string]float64, len(st.leaves))
	var walk func(e Event) error
	walk = func(e Event) error {
		switch v := e.(type) {
		case *Gate:
			for _, c := range v.children {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		default:
			name := e.Name()
			if _, done := probs[name]; done {
				return nil
			}
			p, err := e.Probability(t, nil)
			if err != nil {
				return err
			}
			probs[name] = p
			return nil
		}
	}
	if err := walk(st.top); err != nil {
		return nil, err
	}
	return probs, nil
}

// Probability returns the exact top-event probability at time t via
// inclusion–exclusion over the minimal cut sets, treating each UNIQUE
// basic event as one independent component regardless of how many
// gates reference it.
func (st *SharedTree) Probability(t float64) (float64, error) {
	probs, err := st.leafProbabilities(t)
	if err != nil {
		return 0, err
	}
	n := len(st.mcs)
	var total float64
	// For each non-empty subset of cut sets, the probability that ALL
	// of them occur is the product over the UNION of their events.
	for mask := 1; mask < 1<<n; mask++ {
		union := map[string]bool{}
		bits := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			bits++
			for _, ev := range st.mcs[i] {
				union[ev] = true
			}
		}
		p := 1.0
		for ev := range union {
			p *= probs[ev]
		}
		if bits%2 == 1 {
			total += p
		} else {
			total -= p
		}
	}
	if total < 0 {
		total = 0
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// RareEventUpperBound returns the sum of cut-set probabilities — the
// standard conservative approximation, cheap at any tree size.
func (st *SharedTree) RareEventUpperBound(t float64) (float64, error) {
	probs, err := st.leafProbabilities(t)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, cs := range st.mcs {
		p := 1.0
		for _, ev := range cs {
			p *= probs[ev]
		}
		sum += p
	}
	return math.Min(sum, 1), nil
}
