// Package fta implements fault-tree analysis with support for the
// "complex basic event" concept the paper's SafeDrones technology relies
// on (Kabir et al., IMBSA 2019): a basic event whose time-dependent
// failure probability is produced by an embedded continuous-time Markov
// model rather than a static exponential distribution.
//
// Trees are built from gates (AND, OR, K-of-N) over events; the top
// event probability at mission time t is evaluated by gate arithmetic
// under the usual independence assumption. Minimal cut sets and Birnbaum
// importance measures support the design-time side of the EDDI workflow.
package fta

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"sesame/internal/markov"
)

// Event is any node of a fault tree that can report its failure
// probability at mission time t.
type Event interface {
	// Name returns the unique node label.
	Name() string
	// Probability returns the failure probability at time t, with
	// overrides substituting fixed probabilities for named leaves
	// (used for importance measures); override may be nil.
	Probability(t float64, override map[string]float64) (float64, error)
	// Leaves appends the basic-event names under this node.
	Leaves(into []string) []string
	// CutSets returns the (not yet minimized) cut sets of this node as
	// sets of leaf names.
	CutSets() [][]string
}

// ---- Basic events ----

// BasicEvent is a leaf with an exponential life distribution:
// P(fail by t) = 1 - exp(-lambda t).
type BasicEvent struct {
	name   string
	lambda float64
}

// NewBasicEvent returns an exponential basic event with failure rate
// lambda (per unit time).
func NewBasicEvent(name string, lambda float64) (*BasicEvent, error) {
	if name == "" {
		return nil, errors.New("fta: empty event name")
	}
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return nil, fmt.Errorf("fta: invalid rate %v for %q", lambda, name)
	}
	return &BasicEvent{name: name, lambda: lambda}, nil
}

// Name implements Event.
func (e *BasicEvent) Name() string { return e.name }

// Probability implements Event.
func (e *BasicEvent) Probability(t float64, override map[string]float64) (float64, error) {
	if p, ok := override[e.name]; ok {
		return p, nil
	}
	if t < 0 {
		return 0, fmt.Errorf("fta: negative time %v", t)
	}
	return 1 - math.Exp(-e.lambda*t), nil
}

// Leaves implements Event.
func (e *BasicEvent) Leaves(into []string) []string { return append(into, e.name) }

// CutSets implements Event.
func (e *BasicEvent) CutSets() [][]string { return [][]string{{e.name}} }

// FixedEvent is a leaf with a constant, time-independent probability —
// useful for house events and for unit tests.
type FixedEvent struct {
	name string
	p    float64
}

// NewFixedEvent returns a constant-probability leaf.
func NewFixedEvent(name string, p float64) (*FixedEvent, error) {
	if name == "" {
		return nil, errors.New("fta: empty event name")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("fta: probability %v out of range for %q", p, name)
	}
	return &FixedEvent{name: name, p: p}, nil
}

// Name implements Event.
func (e *FixedEvent) Name() string { return e.name }

// Probability implements Event.
func (e *FixedEvent) Probability(_ float64, override map[string]float64) (float64, error) {
	if p, ok := override[e.name]; ok {
		return p, nil
	}
	return e.p, nil
}

// Leaves implements Event.
func (e *FixedEvent) Leaves(into []string) []string { return append(into, e.name) }

// CutSets implements Event.
func (e *FixedEvent) CutSets() [][]string { return [][]string{{e.name}} }

// ComplexBasicEvent is a leaf whose failure probability comes from an
// embedded CTMC: the probability mass on the chain's designated failure
// states at time t. This is the paper's central modelling device for
// propulsion/battery/processor reliability.
type ComplexBasicEvent struct {
	name    string
	chain   *markov.Chain
	initial string
	failure []string
}

// NewComplexBasicEvent wraps chain as a basic event. initial is the
// chain's healthy start state; failureStates are the absorbing (or not)
// states counted as component failure.
func NewComplexBasicEvent(name string, chain *markov.Chain, initial string, failureStates ...string) (*ComplexBasicEvent, error) {
	if name == "" {
		return nil, errors.New("fta: empty event name")
	}
	if chain == nil {
		return nil, errors.New("fta: nil chain")
	}
	if len(failureStates) == 0 {
		return nil, fmt.Errorf("fta: complex event %q needs failure states", name)
	}
	if _, err := chain.StateIndex(initial); err != nil {
		return nil, err
	}
	for _, s := range failureStates {
		if _, err := chain.StateIndex(s); err != nil {
			return nil, err
		}
	}
	return &ComplexBasicEvent{
		name:    name,
		chain:   chain,
		initial: initial,
		failure: append([]string(nil), failureStates...),
	}, nil
}

// Name implements Event.
func (e *ComplexBasicEvent) Name() string { return e.name }

// Probability implements Event.
func (e *ComplexBasicEvent) Probability(t float64, override map[string]float64) (float64, error) {
	if p, ok := override[e.name]; ok {
		return p, nil
	}
	return e.chain.FailureProbability(e.initial, t, e.failure...)
}

// Leaves implements Event.
func (e *ComplexBasicEvent) Leaves(into []string) []string { return append(into, e.name) }

// CutSets implements Event.
func (e *ComplexBasicEvent) CutSets() [][]string { return [][]string{{e.name}} }

// ---- Gates ----

// GateKind identifies the boolean combinator of a gate.
type GateKind int

// Gate kinds.
const (
	AND GateKind = iota
	OR
	KofN // fires when at least K children have failed
)

func (k GateKind) String() string {
	switch k {
	case AND:
		return "AND"
	case OR:
		return "OR"
	case KofN:
		return "KofN"
	default:
		return fmt.Sprintf("GateKind(%d)", int(k))
	}
}

// Gate combines child events under a boolean operator.
type Gate struct {
	name     string
	kind     GateKind
	k        int // threshold for KofN
	children []Event
}

// NewGate builds an AND or OR gate.
func NewGate(name string, kind GateKind, children ...Event) (*Gate, error) {
	if kind == KofN {
		return nil, errors.New("fta: use NewVoterGate for K-of-N")
	}
	return newGate(name, kind, 0, children)
}

// NewVoterGate builds a K-of-N gate that fires when at least k of its
// children have failed.
func NewVoterGate(name string, k int, children ...Event) (*Gate, error) {
	if k < 1 || k > len(children) {
		return nil, fmt.Errorf("fta: voter threshold %d out of range for %d children", k, len(children))
	}
	return newGate(name, KofN, k, children)
}

func newGate(name string, kind GateKind, k int, children []Event) (*Gate, error) {
	if name == "" {
		return nil, errors.New("fta: empty gate name")
	}
	if len(children) == 0 {
		return nil, fmt.Errorf("fta: gate %q has no children", name)
	}
	for _, c := range children {
		if c == nil {
			return nil, fmt.Errorf("fta: gate %q has nil child", name)
		}
	}
	return &Gate{name: name, kind: kind, k: k, children: append([]Event(nil), children...)}, nil
}

// Name implements Event.
func (g *Gate) Name() string { return g.name }

// Kind returns the gate's boolean operator.
func (g *Gate) Kind() GateKind { return g.kind }

// Probability implements Event by gate arithmetic over independent
// children.
func (g *Gate) Probability(t float64, override map[string]float64) (float64, error) {
	ps := make([]float64, len(g.children))
	for i, c := range g.children {
		p, err := c.Probability(t, override)
		if err != nil {
			return 0, err
		}
		ps[i] = p
	}
	switch g.kind {
	case AND:
		prod := 1.0
		for _, p := range ps {
			prod *= p
		}
		return prod, nil
	case OR:
		prod := 1.0
		for _, p := range ps {
			prod *= 1 - p
		}
		return 1 - prod, nil
	case KofN:
		return atLeastK(ps, g.k), nil
	default:
		return 0, fmt.Errorf("fta: unknown gate kind %v", g.kind)
	}
}

// atLeastK returns P(at least k of the independent events with
// probabilities ps occur) by dynamic programming over the Poisson
// binomial distribution.
func atLeastK(ps []float64, k int) float64 {
	// dist[j] = P(exactly j occurred) over processed prefix.
	dist := make([]float64, len(ps)+1)
	dist[0] = 1
	for _, p := range ps {
		for j := len(dist) - 1; j >= 1; j-- {
			dist[j] = dist[j]*(1-p) + dist[j-1]*p
		}
		dist[0] *= 1 - p
	}
	var sum float64
	for j := k; j < len(dist); j++ {
		sum += dist[j]
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Leaves implements Event.
func (g *Gate) Leaves(into []string) []string {
	for _, c := range g.children {
		into = c.Leaves(into)
	}
	return into
}

// CutSets implements Event.
func (g *Gate) CutSets() [][]string {
	childSets := make([][][]string, len(g.children))
	for i, c := range g.children {
		childSets[i] = c.CutSets()
	}
	switch g.kind {
	case OR:
		var out [][]string
		for _, cs := range childSets {
			out = append(out, cs...)
		}
		return out
	case AND:
		return crossProduct(childSets)
	case KofN:
		// OR over all k-subsets, AND within each subset.
		var out [][]string
		subsets(len(g.children), g.k, func(idx []int) {
			sel := make([][][]string, len(idx))
			for i, j := range idx {
				sel[i] = childSets[j]
			}
			out = append(out, crossProduct(sel)...)
		})
		return out
	default:
		return nil
	}
}

// crossProduct combines one cut set from each group, unioning names.
func crossProduct(groups [][][]string) [][]string {
	out := [][]string{{}}
	for _, g := range groups {
		var next [][]string
		for _, partial := range out {
			for _, cs := range g {
				merged := unionSet(partial, cs)
				next = append(next, merged)
			}
		}
		out = next
	}
	return out
}

func unionSet(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// subsets invokes fn with each k-subset of {0..n-1}.
func subsets(n, k int, fn func([]int)) {
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(idx)
			return
		}
		for i := start; i <= n-(k-depth); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

// ---- Tree ----

// Tree is a validated fault tree with a designated top event.
type Tree struct {
	top    Event
	leaves []string
}

// NewTree validates the tree under top: leaf names must be unique
// (each physical basic event appears exactly once), which is the
// precondition for gate-arithmetic evaluation to be exact.
func NewTree(top Event) (*Tree, error) {
	if top == nil {
		return nil, errors.New("fta: nil top event")
	}
	leaves := top.Leaves(nil)
	seen := make(map[string]bool, len(leaves))
	for _, l := range leaves {
		if seen[l] {
			return nil, fmt.Errorf("fta: basic event %q appears more than once; gate arithmetic would be inexact", l)
		}
		seen[l] = true
	}
	sorted := append([]string(nil), leaves...)
	sort.Strings(sorted)
	return &Tree{top: top, leaves: sorted}, nil
}

// Top returns the tree's top event.
func (tr *Tree) Top() Event { return tr.top }

// BasicEvents returns the sorted names of all leaves.
func (tr *Tree) BasicEvents() []string { return append([]string(nil), tr.leaves...) }

// Probability returns the top-event failure probability at mission
// time t.
func (tr *Tree) Probability(t float64) (float64, error) {
	return tr.top.Probability(t, nil)
}

// MinimalCutSets returns the minimal cut sets of the tree, each sorted,
// with supersets removed, ordered by (size, lexicographic).
func (tr *Tree) MinimalCutSets() [][]string {
	sets := tr.top.CutSets()
	// Deduplicate.
	uniq := make(map[string][]string, len(sets))
	for _, s := range sets {
		uniq[strings.Join(s, "\x00")] = s
	}
	var all [][]string
	for _, s := range uniq {
		all = append(all, s)
	}
	sort.Slice(all, func(i, j int) bool {
		if len(all[i]) != len(all[j]) {
			return len(all[i]) < len(all[j])
		}
		return strings.Join(all[i], ",") < strings.Join(all[j], ",")
	})
	// Remove supersets (all is size-sorted, so earlier sets are never
	// supersets of later ones).
	var minimal [][]string
	for _, s := range all {
		redundant := false
		for _, m := range minimal {
			if isSubset(m, s) {
				redundant = true
				break
			}
		}
		if !redundant {
			minimal = append(minimal, s)
		}
	}
	return minimal
}

func isSubset(sub, super []string) bool {
	i := 0
	for _, s := range super {
		if i < len(sub) && sub[i] == s {
			i++
		}
	}
	return i == len(sub)
}

// BirnbaumImportance returns, for each basic event, the Birnbaum
// structural importance at time t: P(top | leaf certain) - P(top | leaf
// impossible). Larger means the leaf matters more right now.
func (tr *Tree) BirnbaumImportance(t float64) (map[string]float64, error) {
	out := make(map[string]float64, len(tr.leaves))
	for _, leaf := range tr.leaves {
		hi, err := tr.top.Probability(t, map[string]float64{leaf: 1})
		if err != nil {
			return nil, err
		}
		lo, err := tr.top.Probability(t, map[string]float64{leaf: 0})
		if err != nil {
			return nil, err
		}
		out[leaf] = hi - lo
	}
	return out, nil
}
