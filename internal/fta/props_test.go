package fta

// Property-based tests over randomly generated fault trees.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTree builds a random two-level tree over nLeaves exponential
// basic events and returns the tree plus its direct child gates.
func randomTree(t *testing.T, rng *rand.Rand, nLeaves int) *Tree {
	t.Helper()
	if nLeaves < 2 {
		nLeaves = 2
	}
	leaves := make([]Event, nLeaves)
	for i := range leaves {
		lam := math.Pow(10, -3-3*rng.Float64()) // 1e-3 .. 1e-6
		e, err := NewBasicEvent(fmt.Sprintf("e%d", i), lam)
		if err != nil {
			t.Fatal(err)
		}
		leaves[i] = e
	}
	// Group leaves into 2-3 gates, then OR them at the top.
	var gates []Event
	for i := 0; i < len(leaves); {
		n := 2 + rng.Intn(2)
		if i+n > len(leaves) {
			n = len(leaves) - i
		}
		group := leaves[i : i+n]
		var g Event
		var err error
		switch {
		case n == 1:
			g = group[0]
		case rng.Intn(3) == 0 && n >= 2:
			g, err = NewVoterGate(fmt.Sprintf("g%d", i), 1+rng.Intn(n), group...)
		case rng.Intn(2) == 0:
			g, err = NewGate(fmt.Sprintf("g%d", i), AND, group...)
		default:
			g, err = NewGate(fmt.Sprintf("g%d", i), OR, group...)
		}
		if err != nil {
			t.Fatal(err)
		}
		gates = append(gates, g)
		i += n
	}
	top, err := NewGate("top", OR, gates...)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewTree(top)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestRandomTreeProbabilityBounds(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(t, rng, 2+int(nRaw%8))
		for _, ts := range []float64{0, 10, 1000, 100000} {
			p, err := tree.Probability(ts)
			if err != nil {
				return false
			}
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeMonotoneInTime(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(t, rng, 2+int(nRaw%8))
		prev := -1.0
		for _, ts := range []float64{0, 100, 1000, 10000, 100000} {
			p, err := tree.Probability(ts)
			if err != nil {
				return false
			}
			if p < prev-1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGateBoundsProperty(t *testing.T) {
	// For independent children: P(AND) <= min(child), P(OR) >= max.
	f := func(p1Raw, p2Raw, p3Raw float64) bool {
		ps := []float64{
			math.Mod(math.Abs(p1Raw), 1),
			math.Mod(math.Abs(p2Raw), 1),
			math.Mod(math.Abs(p3Raw), 1),
		}
		var kids []Event
		mn, mx := 1.0, 0.0
		for i, p := range ps {
			e, err := NewFixedEvent(fmt.Sprintf("f%d", i), p)
			if err != nil {
				return false
			}
			kids = append(kids, e)
			mn = math.Min(mn, p)
			mx = math.Max(mx, p)
		}
		and, _ := NewGate("and", AND, kids...)
		pa, err := and.Probability(0, nil)
		if err != nil || pa > mn+1e-12 {
			return false
		}
		// Fresh events for the OR (NewTree uniqueness not needed here,
		// but keep the gates independent).
		var kids2 []Event
		for i, p := range ps {
			e, _ := NewFixedEvent(fmt.Sprintf("g%d", i), p)
			kids2 = append(kids2, e)
		}
		or, _ := NewGate("or", OR, kids2...)
		po, err := or.Probability(0, nil)
		return err == nil && po >= mx-1e-12 && po <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVoterMonotoneInK(t *testing.T) {
	// P(>=k of n) is non-increasing in k.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = rng.Float64()
		}
		prev := 2.0
		for k := 1; k <= n; k++ {
			p := atLeastK(ps, k)
			if p > prev+1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBirnbaumNonNegativeForCoherentTrees(t *testing.T) {
	// All gates here are monotone (coherent systems), so Birnbaum
	// importances are >= 0.
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(t, rng, 2+int(nRaw%6))
		imp, err := tree.BirnbaumImportance(500)
		if err != nil {
			return false
		}
		for _, v := range imp {
			if v < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
