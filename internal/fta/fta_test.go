package fta

import (
	"math"
	"testing"
	"testing/quick"

	"sesame/internal/markov"
)

func fixed(t *testing.T, name string, p float64) *FixedEvent {
	t.Helper()
	e, err := NewFixedEvent(name, p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBasicEventExponential(t *testing.T) {
	e, err := NewBasicEvent("motor", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Probability(1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-1)
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("P = %v, want %v", p, want)
	}
	if _, err := e.Probability(-1, nil); err == nil {
		t.Fatal("negative time must fail")
	}
}

func TestBasicEventOverride(t *testing.T) {
	e, _ := NewBasicEvent("motor", 0.001)
	p, err := e.Probability(1000, map[string]float64{"motor": 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.25 {
		t.Fatalf("override ignored: %v", p)
	}
}

func TestEventValidation(t *testing.T) {
	if _, err := NewBasicEvent("", 1); err == nil {
		t.Error("empty name must fail")
	}
	if _, err := NewBasicEvent("x", -1); err == nil {
		t.Error("negative rate must fail")
	}
	if _, err := NewFixedEvent("x", 1.5); err == nil {
		t.Error("p>1 must fail")
	}
	if _, err := NewFixedEvent("x", math.NaN()); err == nil {
		t.Error("NaN must fail")
	}
}

func TestANDGate(t *testing.T) {
	g, err := NewGate("top", AND, fixed(t, "a", 0.5), fixed(t, "b", 0.2))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := g.Probability(0, nil)
	if math.Abs(p-0.1) > 1e-12 {
		t.Fatalf("AND = %v, want 0.1", p)
	}
}

func TestORGate(t *testing.T) {
	g, _ := NewGate("top", OR, fixed(t, "a", 0.5), fixed(t, "b", 0.2))
	p, _ := g.Probability(0, nil)
	if math.Abs(p-0.6) > 1e-12 {
		t.Fatalf("OR = %v, want 0.6", p)
	}
}

func TestVoterGate(t *testing.T) {
	// 2-of-3 identical p=0.1: P = 3 p^2 (1-p) + p^3 = 0.028.
	g, err := NewVoterGate("v", 2, fixed(t, "a", 0.1), fixed(t, "b", 0.1), fixed(t, "c", 0.1))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := g.Probability(0, nil)
	if math.Abs(p-0.028) > 1e-12 {
		t.Fatalf("2oo3 = %v, want 0.028", p)
	}
}

func TestVoterGateEdges(t *testing.T) {
	a, b := fixed(t, "a", 0.3), fixed(t, "b", 0.7)
	// 1-of-2 == OR.
	v1, _ := NewVoterGate("v1", 1, a, b)
	or, _ := NewGate("or", OR, a, b)
	p1, _ := v1.Probability(0, nil)
	pOr, _ := or.Probability(0, nil)
	if math.Abs(p1-pOr) > 1e-12 {
		t.Fatalf("1oo2 %v != OR %v", p1, pOr)
	}
	// 2-of-2 == AND.
	v2, _ := NewVoterGate("v2", 2, a, b)
	and, _ := NewGate("and", AND, a, b)
	p2, _ := v2.Probability(0, nil)
	pAnd, _ := and.Probability(0, nil)
	if math.Abs(p2-pAnd) > 1e-12 {
		t.Fatalf("2oo2 %v != AND %v", p2, pAnd)
	}
}

func TestGateValidation(t *testing.T) {
	a := fixed(t, "a", 0.1)
	if _, err := NewGate("", OR, a); err == nil {
		t.Error("empty gate name must fail")
	}
	if _, err := NewGate("g", OR); err == nil {
		t.Error("no children must fail")
	}
	if _, err := NewGate("g", OR, nil); err == nil {
		t.Error("nil child must fail")
	}
	if _, err := NewGate("g", KofN, a); err == nil {
		t.Error("KofN via NewGate must fail")
	}
	if _, err := NewVoterGate("v", 0, a); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := NewVoterGate("v", 2, a); err == nil {
		t.Error("k>n must fail")
	}
}

func TestAtLeastKProperty(t *testing.T) {
	// P(>=1) from the DP must match the OR closed form.
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		ps := make([]float64, len(raw))
		prod := 1.0
		for i, r := range raw {
			ps[i] = math.Mod(math.Abs(r), 1)
			prod *= 1 - ps[i]
		}
		return math.Abs(atLeastK(ps, 1)-(1-prod)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComplexBasicEvent(t *testing.T) {
	ch := markov.MustChain("ok", "degraded", "failed")
	ch.MustAddTransition("ok", "degraded", 0.01)
	ch.MustAddTransition("degraded", "failed", 0.05)
	cbe, err := NewComplexBasicEvent("battery", ch, "ok", "failed")
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := cbe.Probability(0, nil)
	if p0 != 0 {
		t.Fatalf("P(0) = %v, want 0", p0)
	}
	p100, _ := cbe.Probability(100, nil)
	p500, _ := cbe.Probability(500, nil)
	if !(p500 > p100 && p100 > 0) {
		t.Fatalf("PoF must grow: %v then %v", p100, p500)
	}
	want, _ := ch.FailureProbability("ok", 100, "failed")
	if math.Abs(p100-want) > 1e-12 {
		t.Fatalf("CBE = %v, chain says %v", p100, want)
	}
}

func TestComplexBasicEventValidation(t *testing.T) {
	ch := markov.MustChain("ok", "failed")
	if _, err := NewComplexBasicEvent("", ch, "ok", "failed"); err == nil {
		t.Error("empty name must fail")
	}
	if _, err := NewComplexBasicEvent("b", nil, "ok", "failed"); err == nil {
		t.Error("nil chain must fail")
	}
	if _, err := NewComplexBasicEvent("b", ch, "nope", "failed"); err == nil {
		t.Error("bad initial must fail")
	}
	if _, err := NewComplexBasicEvent("b", ch, "ok"); err == nil {
		t.Error("no failure states must fail")
	}
	if _, err := NewComplexBasicEvent("b", ch, "ok", "nope"); err == nil {
		t.Error("bad failure state must fail")
	}
}

func buildSampleTree(t *testing.T) *Tree {
	t.Helper()
	// top = OR(AND(a,b), c)
	a := fixed(t, "a", 0.1)
	b := fixed(t, "b", 0.2)
	c := fixed(t, "c", 0.05)
	and, _ := NewGate("ab", AND, a, b)
	top, _ := NewGate("top", OR, and, c)
	tr, err := NewTree(top)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTreeProbability(t *testing.T) {
	tr := buildSampleTree(t)
	p, err := tr.Probability(0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.1*0.2)*(1-0.05)
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("P(top) = %v, want %v", p, want)
	}
}

func TestTreeRejectsDuplicateLeaves(t *testing.T) {
	a := fixed(t, "a", 0.1)
	g, _ := NewGate("g", AND, a, a)
	if _, err := NewTree(g); err == nil {
		t.Fatal("duplicate leaf must be rejected")
	}
	if _, err := NewTree(nil); err == nil {
		t.Fatal("nil top must be rejected")
	}
}

func TestMinimalCutSets(t *testing.T) {
	tr := buildSampleTree(t)
	mcs := tr.MinimalCutSets()
	// Expect {c} and {a,b}.
	if len(mcs) != 2 {
		t.Fatalf("got %d cut sets: %v", len(mcs), mcs)
	}
	if len(mcs[0]) != 1 || mcs[0][0] != "c" {
		t.Fatalf("first MCS = %v, want [c]", mcs[0])
	}
	if len(mcs[1]) != 2 || mcs[1][0] != "a" || mcs[1][1] != "b" {
		t.Fatalf("second MCS = %v, want [a b]", mcs[1])
	}
}

func TestMinimalCutSetsVoter(t *testing.T) {
	a := fixed(t, "a", 0.1)
	b := fixed(t, "b", 0.1)
	c := fixed(t, "c", 0.1)
	v, _ := NewVoterGate("v", 2, a, b, c)
	tr, err := NewTree(v)
	if err != nil {
		t.Fatal(err)
	}
	mcs := tr.MinimalCutSets()
	if len(mcs) != 3 {
		t.Fatalf("2oo3 must have 3 MCS, got %v", mcs)
	}
	for _, s := range mcs {
		if len(s) != 2 {
			t.Fatalf("2oo3 MCS must be pairs, got %v", s)
		}
	}
}

func TestMinimalCutSetsRemovesSupersets(t *testing.T) {
	// OR(a, AND(a', b)) where a' duplicates structure: build
	// OR(x, AND(x?, ...)) cannot reuse names, so test via voter
	// containing an OR: top = OR(a, AND(b, c), AND(b, c-like)). Use
	// direct construction: OR(b, AND(b2,c)) has no supersets; instead
	// check superset pruning with OR(a, AND(a-subsume)). Simplest
	// concrete case: top = OR(a, AND(b,c)), sub = OR over same leaves
	// not possible without reuse — so verify pruning logic directly.
	if !isSubset([]string{"a"}, []string{"a", "b"}) {
		t.Fatal("isSubset broken")
	}
	if isSubset([]string{"a", "z"}, []string{"a", "b"}) {
		t.Fatal("isSubset false positive")
	}
}

func TestBirnbaumImportance(t *testing.T) {
	tr := buildSampleTree(t)
	imp, err := tr.BirnbaumImportance(0)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: d/dc = 1 - P(ab) = 1 - 0.02 = 0.98;
	// d/da = b*(1-c) = 0.2*0.95 = 0.19; d/db = a*(1-c) = 0.095.
	if math.Abs(imp["c"]-0.98) > 1e-12 {
		t.Errorf("I(c) = %v, want 0.98", imp["c"])
	}
	if math.Abs(imp["a"]-0.19) > 1e-12 {
		t.Errorf("I(a) = %v, want 0.19", imp["a"])
	}
	if math.Abs(imp["b"]-0.095) > 1e-12 {
		t.Errorf("I(b) = %v, want 0.095", imp["b"])
	}
}

func TestTreeBasicEvents(t *testing.T) {
	tr := buildSampleTree(t)
	got := tr.BasicEvents()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("BasicEvents = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BasicEvents = %v, want %v", got, want)
		}
	}
}

func TestGateKindString(t *testing.T) {
	if AND.String() != "AND" || OR.String() != "OR" || KofN.String() != "KofN" {
		t.Fatal("GateKind strings wrong")
	}
	if GateKind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestDeepTreeWithComplexEvents(t *testing.T) {
	// A miniature SafeDrones-like tree: OR(propulsion 2oo4, battery CBE).
	mk := func(name string, lam float64) *BasicEvent {
		e, err := NewBasicEvent(name, lam)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	motors := []Event{mk("m1", 1e-4), mk("m2", 1e-4), mk("m3", 1e-4), mk("m4", 1e-4)}
	prop, err := NewVoterGate("propulsion", 2, motors...)
	if err != nil {
		t.Fatal(err)
	}
	ch := markov.MustChain("ok", "hot", "dead")
	ch.MustAddTransition("ok", "hot", 5e-4)
	ch.MustAddTransition("hot", "dead", 5e-3)
	batt, err := NewComplexBasicEvent("battery", ch, "ok", "dead")
	if err != nil {
		t.Fatal(err)
	}
	top, _ := NewGate("uav-loss", OR, prop, batt)
	tr, err := NewTree(top)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, tt := range []float64{0, 100, 300, 600, 1200} {
		p, err := tr.Probability(tt)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Fatalf("PoF must be monotone, %v after %v", p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("PoF out of range: %v", p)
		}
		prev = p
	}
	mcs := tr.MinimalCutSets()
	// 6 motor pairs + battery alone.
	if len(mcs) != 7 {
		t.Fatalf("MCS count = %d, want 7 (%v)", len(mcs), mcs)
	}
}

func BenchmarkTreeEvaluation(b *testing.B) {
	ch := markov.MustChain("ok", "hot", "dead")
	ch.MustAddTransition("ok", "hot", 5e-4)
	ch.MustAddTransition("hot", "dead", 5e-3)
	batt, _ := NewComplexBasicEvent("battery", ch, "ok", "dead")
	var motors []Event
	for _, n := range []string{"m1", "m2", "m3", "m4"} {
		m, _ := NewBasicEvent(n, 1e-4)
		motors = append(motors, m)
	}
	prop, _ := NewVoterGate("prop", 2, motors...)
	top, _ := NewGate("top", OR, prop, batt)
	tr, _ := NewTree(top)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Probability(500); err != nil {
			b.Fatal(err)
		}
	}
}
