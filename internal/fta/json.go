package fta

// JSON exchange format for fault trees, completing the EDDI model
// exchange story: basic events (exponential or fixed), Markov-backed
// complex basic events (with their embedded chain), and AND/OR/K-of-N
// gates all round-trip.

import (
	"encoding/json"
	"fmt"

	"sesame/internal/markov"
)

type eventJSON struct {
	Kind string `json:"kind"` // "basic" | "fixed" | "complex" | "gate"
	Name string `json:"name"`

	// basic
	Lambda float64 `json:"lambda,omitempty"`
	// fixed
	Probability float64 `json:"probability,omitempty"`
	// complex
	Chain         json.RawMessage `json:"chain,omitempty"`
	Initial       string          `json:"initial,omitempty"`
	FailureStates []string        `json:"failureStates,omitempty"`
	// gate
	Gate     string      `json:"gate,omitempty"` // "AND" | "OR" | "KofN"
	K        int         `json:"k,omitempty"`
	Children []eventJSON `json:"children,omitempty"`
}

func encodeEvent(e Event) (eventJSON, error) {
	switch v := e.(type) {
	case *BasicEvent:
		return eventJSON{Kind: "basic", Name: v.name, Lambda: v.lambda}, nil
	case *FixedEvent:
		return eventJSON{Kind: "fixed", Name: v.name, Probability: v.p}, nil
	case *ComplexBasicEvent:
		chain, err := json.Marshal(v.chain)
		if err != nil {
			return eventJSON{}, err
		}
		return eventJSON{
			Kind: "complex", Name: v.name,
			Chain: chain, Initial: v.initial,
			FailureStates: append([]string(nil), v.failure...),
		}, nil
	case *Gate:
		out := eventJSON{Kind: "gate", Name: v.name, Gate: v.kind.String(), K: v.k}
		for _, c := range v.children {
			cj, err := encodeEvent(c)
			if err != nil {
				return eventJSON{}, err
			}
			out.Children = append(out.Children, cj)
		}
		return out, nil
	default:
		return eventJSON{}, fmt.Errorf("fta: cannot encode event type %T", e)
	}
}

func decodeEvent(j eventJSON) (Event, error) {
	switch j.Kind {
	case "basic":
		return NewBasicEvent(j.Name, j.Lambda)
	case "fixed":
		return NewFixedEvent(j.Name, j.Probability)
	case "complex":
		ch, err := markov.ParseChain(j.Chain)
		if err != nil {
			return nil, err
		}
		return NewComplexBasicEvent(j.Name, ch, j.Initial, j.FailureStates...)
	case "gate":
		var kids []Event
		for _, cj := range j.Children {
			c, err := decodeEvent(cj)
			if err != nil {
				return nil, err
			}
			kids = append(kids, c)
		}
		switch j.Gate {
		case "AND":
			return NewGate(j.Name, AND, kids...)
		case "OR":
			return NewGate(j.Name, OR, kids...)
		case "KofN":
			return NewVoterGate(j.Name, j.K, kids...)
		default:
			return nil, fmt.Errorf("fta: unknown gate %q", j.Gate)
		}
	default:
		return nil, fmt.Errorf("fta: unknown event kind %q", j.Kind)
	}
}

// MarshalJSON encodes the tree as its exchange document.
func (tr *Tree) MarshalJSON() ([]byte, error) {
	doc, err := encodeEvent(tr.top)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(doc, "", "  ")
}

// ParseTree decodes and validates a fault-tree exchange document.
func ParseTree(data []byte) (*Tree, error) {
	var doc eventJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("fta: decoding: %w", err)
	}
	top, err := decodeEvent(doc)
	if err != nil {
		return nil, err
	}
	return NewTree(top)
}
