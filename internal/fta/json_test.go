package fta

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"sesame/internal/markov"
)

// safeDronesLikeTree builds a tree with every event kind represented.
func safeDronesLikeTree(t *testing.T) *Tree {
	t.Helper()
	ch := markov.MustChain("ok", "hot", "dead")
	ch.MustAddTransition("ok", "hot", 5e-4)
	ch.MustAddTransition("hot", "dead", 5e-3)
	ch.MustAddTransition("hot", "ok", 1e-3)
	batt, err := NewComplexBasicEvent("battery", ch, "ok", "dead")
	if err != nil {
		t.Fatal(err)
	}
	var motors []Event
	for _, n := range []string{"m1", "m2", "m3", "m4"} {
		m, err := NewBasicEvent(n, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		motors = append(motors, m)
	}
	prop, err := NewVoterGate("propulsion", 2, motors...)
	if err != nil {
		t.Fatal(err)
	}
	house, err := NewFixedEvent("maintenance-due", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	top, err := NewGate("uav-loss", OR, prop, batt, house)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewTree(top)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestTreeJSONRoundTrip(t *testing.T) {
	orig := safeDronesLikeTree(t)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"complex", "KofN", "lambda", "failureStates", "transitions"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("document missing %q", want)
		}
	}
	back, err := ParseTree(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range []float64{0, 60, 510, 3600} {
		p1, err1 := orig.Probability(ts)
		p2, err2 := back.Probability(ts)
		if err1 != nil || err2 != nil {
			t.Fatalf("t=%v: %v / %v", ts, err1, err2)
		}
		if math.Abs(p1-p2) > 1e-12 {
			t.Fatalf("t=%v: %v vs %v", ts, p1, p2)
		}
	}
	// Cut sets survive too.
	if len(back.MinimalCutSets()) != len(orig.MinimalCutSets()) {
		t.Fatal("cut sets changed across round trip")
	}
	// Stable re-marshal.
	data2, _ := json.Marshal(back)
	if string(data) != string(data2) {
		t.Fatal("round trip not idempotent")
	}
}

func TestParseTreeRejectsBadDocuments(t *testing.T) {
	cases := []string{
		`{bad`,
		`{"kind":"wat","name":"x"}`,
		`{"kind":"gate","name":"g","gate":"XOR","children":[{"kind":"fixed","name":"a","probability":0.1}]}`,
		`{"kind":"basic","name":"","lambda":0.1}`,
		`{"kind":"fixed","name":"f","probability":2}`,
		`{"kind":"complex","name":"c","chain":{"states":["a"]},"initial":"nope","failureStates":["a"]}`,
		`{"kind":"gate","name":"g","gate":"AND","children":[
		   {"kind":"fixed","name":"dup","probability":0.1},
		   {"kind":"fixed","name":"dup","probability":0.2}]}`,
	}
	for _, c := range cases {
		if _, err := ParseTree([]byte(c)); err == nil {
			t.Errorf("accepted invalid document: %s", c)
		}
	}
}

func TestChainJSONRoundTrip(t *testing.T) {
	ch := markov.MustChain("a", "b", "c")
	ch.MustAddTransition("a", "b", 0.5)
	ch.MustAddTransition("b", "c", 0.25)
	ch.MustAddTransition("b", "a", 0.1)
	data, err := json.Marshal(ch)
	if err != nil {
		t.Fatal(err)
	}
	back, err := markov.ParseChain(data)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := ch.FailureProbability("a", 10, "c")
	p2, _ := back.FailureProbability("a", 10, "c")
	if math.Abs(p1-p2) > 1e-12 {
		t.Fatalf("chain behaviour changed: %v vs %v", p1, p2)
	}
	if _, err := markov.ParseChain([]byte("{bad")); err == nil {
		t.Fatal("malformed chain must fail")
	}
	if _, err := markov.ParseChain([]byte(`{"states":[],"transitions":[]}`)); err == nil {
		t.Fatal("empty chain must fail")
	}
}
