package security

import (
	"testing"

	"sesame/internal/attacktree"
	"sesame/internal/ids"
	"sesame/internal/mqttlite"
)

// newDualEDDI monitors both the spoofing and the hijack tree for u1.
func newDualEDDI(t *testing.T) (*mqttlite.Broker, *EDDI) {
	t.Helper()
	broker := mqttlite.NewBroker()
	e, err := New(broker)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	spoof, err := attacktree.SpoofingTree("u1")
	if err != nil {
		t.Fatal(err)
	}
	hijack, err := attacktree.HijackTree("u1")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Monitor("u1", spoof); err != nil {
		t.Fatal(err)
	}
	if err := e.Monitor("u1", hijack); err != nil {
		t.Fatal(err)
	}
	return broker, e
}

func TestHijackTreeStructure(t *testing.T) {
	tr, err := attacktree.HijackTree("u1")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root().ID != "u1/c2-hijack" {
		t.Fatalf("root = %q", tr.Root().ID)
	}
	// Jamming alone reaches the root (OR path).
	ev := tr.Evaluate(map[string]bool{"u1/link-jamming": true})
	if !ev.RootReached {
		t.Fatal("jamming must reach the hijack root")
	}
	// Command injection alone does not (AND with net access).
	ev = tr.Evaluate(map[string]bool{"u1/cmd-injection": true})
	if ev.RootReached {
		t.Fatal("injection without access must not reach the root")
	}
}

func TestDualTreesIndependentCompromise(t *testing.T) {
	broker, e := newDualEDDI(t)
	// link-silence triggers only the hijack tree.
	publishAlert(t, broker, ids.Alert{Type: ids.AlertLinkSilence, UAV: "u1", Stamp: 5})
	if !e.CompromisedBy("u1", "u1/c2-hijack") {
		t.Fatal("hijack root not reached")
	}
	if e.CompromisedBy("u1", "u1/map-manipulation") {
		t.Fatal("spoofing root must be untouched")
	}
	if !e.Compromised("u1") {
		t.Fatal("any-root compromise must report")
	}
	// gps-anomaly then triggers the spoofing tree independently.
	publishAlert(t, broker, ids.Alert{Type: ids.AlertGPSAnomaly, UAV: "u1", Stamp: 6})
	if !e.CompromisedBy("u1", "u1/map-manipulation") {
		t.Fatal("spoofing root not reached")
	}
}

func TestSharedAlertFeedsBothTrees(t *testing.T) {
	broker, e := newDualEDDI(t)
	// unauthorized-node is a leaf in BOTH trees.
	publishAlert(t, broker, ids.Alert{Type: ids.AlertUnauthorizedNode, UAV: "u1", Stamp: 1})
	leaves := e.TriggeredLeaves("u1")
	if len(leaves) != 2 {
		t.Fatalf("triggered = %v, want both trees' access leaves", leaves)
	}
	// message-injection completes the AND in both trees.
	publishAlert(t, broker, ids.Alert{Type: ids.AlertMessageInjection, UAV: "u1", Stamp: 2})
	if !e.CompromisedBy("u1", "u1/map-manipulation") {
		t.Fatal("spoofing root (ros path) not reached")
	}
	if !e.CompromisedBy("u1", "u1/c2-hijack") {
		t.Fatal("hijack root (seizure path) not reached")
	}
}

func TestDuplicateTreeRejected(t *testing.T) {
	_, e := newDualEDDI(t)
	spoof, _ := attacktree.SpoofingTree("u1")
	if err := e.Monitor("u1", spoof); err == nil {
		t.Fatal("duplicate root id must be rejected")
	}
}

func TestResetClearsAllTrees(t *testing.T) {
	broker, e := newDualEDDI(t)
	publishAlert(t, broker, ids.Alert{Type: ids.AlertLinkSilence, UAV: "u1", Stamp: 1})
	publishAlert(t, broker, ids.Alert{Type: ids.AlertGPSAnomaly, UAV: "u1", Stamp: 2})
	if !e.Compromised("u1") {
		t.Fatal("setup failed")
	}
	e.Reset("u1")
	if e.Compromised("u1") || e.CompromisedBy("u1", "u1/c2-hijack") {
		t.Fatal("reset must clear every tree")
	}
}
