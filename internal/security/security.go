// Package security implements the Security EDDI (paper §III-B): a
// runtime monitor that subscribes to IDS alerts on the MQTT broker,
// maps each alert onto the leaves of an attack tree, and traces the
// attack path from the leaves toward the root. Reaching the root means
// the adversary's end goal is achieved — a critical security event —
// at which point the EDDI emits a compromise event carrying the
// attack path and the modelled mitigation (in the §V-C scenario:
// trigger Collaborative Localization and land the UAV safely).
package security

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"sesame/internal/attacktree"
	"sesame/internal/ids"
	"sesame/internal/mqttlite"
)

// Event is a detected compromise (attack-tree root reached) or
// progress report (new nodes satisfied).
type Event struct {
	UAV string
	// Root is the attack tree's goal node id.
	Root string
	// RootReached marks a full compromise; false means partial
	// progress only.
	RootReached bool
	// Path is the satisfied chain leaf->root when RootReached.
	Path []string
	// Severity and Mitigation come from the goal node's metadata.
	Severity   attacktree.Severity
	Mitigation string
	// Alert is the IDS alert that completed the path.
	Alert ids.Alert
}

// Handler consumes security events.
type Handler func(Event)

// EDDI is the per-fleet security monitor. Create with New, attach one
// attack tree per UAV with Monitor, and register compromise handlers
// with OnEvent.
type EDDI struct {
	broker *mqttlite.Broker

	mu        sync.Mutex
	trees     map[string][]*attacktree.Tree // uav -> monitored trees
	triggered map[string]map[string]bool    // uav -> leaf id -> true
	reported  map[string]bool               // uav+"/"+root -> reported
	events    []Event
	handlers  []Handler
	cancels   []func()
}

// New returns an EDDI bound to the alert broker.
func New(broker *mqttlite.Broker) (*EDDI, error) {
	if broker == nil {
		return nil, errors.New("security: nil broker")
	}
	return &EDDI{
		broker:    broker,
		trees:     make(map[string][]*attacktree.Tree),
		triggered: make(map[string]map[string]bool),
		reported:  make(map[string]bool),
	}, nil
}

// OnEvent registers a handler invoked for every emitted event
// (compromises and progress). Handlers run synchronously on the
// broker's delivery path.
func (e *EDDI) OnEvent(h Handler) error {
	if h == nil {
		return errors.New("security: nil handler")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers = append(e.handlers, h)
	return nil
}

// Monitor attaches an attack tree for the given UAV, subscribing to
// its IDS alert topic on first use. Multiple trees per UAV are
// supported (e.g. map-manipulation and C2-hijack), as long as their
// root ids differ.
func (e *EDDI) Monitor(uav string, tree *attacktree.Tree) error {
	if uav == "" {
		return errors.New("security: empty UAV id")
	}
	if tree == nil {
		return errors.New("security: nil tree")
	}
	e.mu.Lock()
	firstForUAV := len(e.trees[uav]) == 0
	for _, existing := range e.trees[uav] {
		if existing.Root().ID == tree.Root().ID {
			e.mu.Unlock()
			return fmt.Errorf("security: UAV %q already monitors tree %q", uav, tree.Root().ID)
		}
	}
	e.trees[uav] = append(e.trees[uav], tree)
	if e.triggered[uav] == nil {
		e.triggered[uav] = make(map[string]bool)
	}
	e.mu.Unlock()

	if !firstForUAV {
		return nil
	}
	cancel, err := e.broker.Subscribe(ids.AlertTopic(uav), func(m mqttlite.Message) {
		var a ids.Alert
		if err := json.Unmarshal(m.Payload, &a); err != nil {
			return
		}
		e.ingest(uav, a)
	})
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.cancels = append(e.cancels, cancel)
	e.mu.Unlock()
	return nil
}

// ingest marks the alert's leaves and re-evaluates every tree the UAV
// carries.
func (e *EDDI) ingest(uav string, a ids.Alert) {
	e.mu.Lock()
	trees := e.trees[uav]
	if len(trees) == 0 {
		e.mu.Unlock()
		return
	}
	var toEmit []Event
	for _, tree := range trees {
		leaves := tree.LeavesForAlert(a.Type)
		if len(leaves) == 0 {
			continue
		}
		newly := false
		for _, l := range leaves {
			if !e.triggered[uav][l.ID] {
				e.triggered[uav][l.ID] = true
				newly = true
			}
		}
		if !newly {
			continue
		}
		ev := tree.Evaluate(e.triggered[uav])
		out := Event{
			UAV:         uav,
			Root:        tree.Root().ID,
			RootReached: ev.RootReached,
			Path:        ev.Path,
			Severity:    tree.Root().Severity,
			Mitigation:  tree.Root().Mitigation,
			Alert:       a,
		}
		if ev.RootReached {
			key := uav + "/" + tree.Root().ID
			if e.reported[key] {
				continue
			}
			e.reported[key] = true
		}
		e.events = append(e.events, out)
		toEmit = append(toEmit, out)
	}
	handlers := append([]Handler(nil), e.handlers...)
	e.mu.Unlock()
	for _, out := range toEmit {
		for _, h := range handlers {
			h(out)
		}
	}
}

// Events returns a copy of all emitted events.
func (e *EDDI) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Event(nil), e.events...)
}

// Compromised reports whether any of the UAV's attack-tree roots has
// been reached.
func (e *EDDI) Compromised(uav string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, tree := range e.trees[uav] {
		if e.reported[uav+"/"+tree.Root().ID] {
			return true
		}
	}
	return false
}

// CompromisedBy reports whether the specific attack-tree root has been
// reached for the UAV.
func (e *EDDI) CompromisedBy(uav, rootID string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reported[uav+"/"+rootID]
}

// TriggeredLeaves returns the sorted ids of currently satisfied leaves
// for the UAV.
func (e *EDDI) TriggeredLeaves(uav string) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for id := range e.triggered[uav] {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Reset clears the UAV's triggered state (e.g. after remediation), so
// a repeat attack is reported again.
func (e *EDDI) Reset(uav string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m := e.triggered[uav]; m != nil {
		for k := range m {
			delete(m, k)
		}
	}
	for _, tree := range e.trees[uav] {
		delete(e.reported, uav+"/"+tree.Root().ID)
	}
}

// Close cancels all broker subscriptions.
func (e *EDDI) Close() {
	e.mu.Lock()
	cancels := e.cancels
	e.cancels = nil
	e.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}
