package security

import (
	"encoding/json"
	"testing"

	"sesame/internal/attacktree"
	"sesame/internal/geo"
	"sesame/internal/ids"
	"sesame/internal/mqttlite"
	"sesame/internal/uavsim"
)

func publishAlert(t *testing.T, broker *mqttlite.Broker, a ids.Alert) {
	t.Helper()
	payload, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := broker.Publish(ids.AlertTopic(a.UAV), payload, false); err != nil {
		t.Fatal(err)
	}
}

func newEDDI(t *testing.T) (*mqttlite.Broker, *EDDI) {
	t.Helper()
	broker := mqttlite.NewBroker()
	e, err := New(broker)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	tr, err := attacktree.SpoofingTree("u1")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Monitor("u1", tr); err != nil {
		t.Fatal(err)
	}
	return broker, e
}

func TestValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil broker must fail")
	}
	broker := mqttlite.NewBroker()
	e, _ := New(broker)
	tr, _ := attacktree.SpoofingTree("u1")
	if err := e.Monitor("", tr); err == nil {
		t.Error("empty uav must fail")
	}
	if err := e.Monitor("u1", nil); err == nil {
		t.Error("nil tree must fail")
	}
	if err := e.Monitor("u1", tr); err != nil {
		t.Fatal(err)
	}
	if err := e.Monitor("u1", tr); err == nil {
		t.Error("duplicate monitor must fail")
	}
	if err := e.OnEvent(nil); err == nil {
		t.Error("nil handler must fail")
	}
}

func TestGPSAnomalyCompromises(t *testing.T) {
	broker, e := newEDDI(t)
	var events []Event
	_ = e.OnEvent(func(ev Event) { events = append(events, ev) })
	publishAlert(t, broker, ids.Alert{Type: ids.AlertGPSAnomaly, UAV: "u1", Stamp: 20})
	if !e.Compromised("u1") {
		t.Fatal("gps-anomaly alone satisfies the OR root")
	}
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	ev := events[0]
	if !ev.RootReached || ev.Root != "u1/map-manipulation" {
		t.Fatalf("event = %+v", ev)
	}
	if len(ev.Path) != 2 || ev.Path[0] != "u1/gps-spoof" {
		t.Fatalf("path = %v", ev.Path)
	}
	if ev.Severity != attacktree.SeverityCritical || ev.Mitigation == "" {
		t.Fatalf("metadata = %+v", ev)
	}
	if ev.Alert.Stamp != 20 {
		t.Fatalf("alert stamp = %v", ev.Alert.Stamp)
	}
}

func TestANDPathNeedsBothAlerts(t *testing.T) {
	broker, e := newEDDI(t)
	var events []Event
	_ = e.OnEvent(func(ev Event) { events = append(events, ev) })

	publishAlert(t, broker, ids.Alert{Type: ids.AlertUnauthorizedNode, UAV: "u1", Stamp: 1})
	if e.Compromised("u1") {
		t.Fatal("single AND leaf must not compromise")
	}
	if len(events) != 1 || events[0].RootReached {
		t.Fatalf("progress event expected: %+v", events)
	}
	leaves := e.TriggeredLeaves("u1")
	if len(leaves) != 1 || leaves[0] != "u1/net-access" {
		t.Fatalf("triggered = %v", leaves)
	}

	publishAlert(t, broker, ids.Alert{Type: ids.AlertMessageInjection, UAV: "u1", Stamp: 2})
	if !e.Compromised("u1") {
		t.Fatal("both AND leaves must compromise")
	}
	last := events[len(events)-1]
	if !last.RootReached || len(last.Path) != 3 {
		t.Fatalf("compromise event = %+v", last)
	}
}

func TestDuplicateCompromiseSuppressed(t *testing.T) {
	broker, e := newEDDI(t)
	var count int
	_ = e.OnEvent(func(ev Event) {
		if ev.RootReached {
			count++
		}
	})
	publishAlert(t, broker, ids.Alert{Type: ids.AlertGPSAnomaly, UAV: "u1", Stamp: 1})
	publishAlert(t, broker, ids.Alert{Type: ids.AlertGPSAnomaly, UAV: "u1", Stamp: 2})
	// Second identical alert doesn't add leaves; also a different leaf
	// arriving later must not re-report the same root.
	publishAlert(t, broker, ids.Alert{Type: ids.AlertUnauthorizedNode, UAV: "u1", Stamp: 3})
	if count != 1 {
		t.Fatalf("root reported %d times, want 1", count)
	}
}

func TestResetAllowsReReporting(t *testing.T) {
	broker, e := newEDDI(t)
	publishAlert(t, broker, ids.Alert{Type: ids.AlertGPSAnomaly, UAV: "u1", Stamp: 1})
	if !e.Compromised("u1") {
		t.Fatal("setup failed")
	}
	e.Reset("u1")
	if e.Compromised("u1") {
		t.Fatal("reset must clear compromise")
	}
	if len(e.TriggeredLeaves("u1")) != 0 {
		t.Fatal("reset must clear leaves")
	}
	publishAlert(t, broker, ids.Alert{Type: ids.AlertGPSAnomaly, UAV: "u1", Stamp: 9})
	if !e.Compromised("u1") {
		t.Fatal("repeat attack must be reported again")
	}
}

func TestUnknownAlertTypeIgnored(t *testing.T) {
	broker, e := newEDDI(t)
	publishAlert(t, broker, ids.Alert{Type: "weird", UAV: "u1", Stamp: 1})
	if len(e.Events()) != 0 || e.Compromised("u1") {
		t.Fatal("unknown alert must be ignored")
	}
}

func TestMalformedPayloadIgnored(t *testing.T) {
	broker, e := newEDDI(t)
	_ = broker.Publish(ids.AlertTopic("u1"), []byte("{not json"), false)
	if len(e.Events()) != 0 {
		t.Fatal("malformed payload must be ignored")
	}
}

func TestOtherUAVAlertsDontCross(t *testing.T) {
	broker, e := newEDDI(t)
	publishAlert(t, broker, ids.Alert{Type: ids.AlertGPSAnomaly, UAV: "u2", Stamp: 1})
	if e.Compromised("u1") {
		t.Fatal("u2 alert compromised u1")
	}
}

func TestEndToEndWithIDSAndWorld(t *testing.T) {
	// Full §V-C detection chain: world -> rosbus -> IDS -> mqtt ->
	// Security EDDI -> compromise event.
	origin := geo.LatLng{Lat: 35.1856, Lng: 33.3823}
	w := uavsim.NewWorld(origin, 3)
	broker := mqttlite.NewBroker()
	det, err := ids.New(w.Bus, broker, ids.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	e, err := New(broker)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tr, _ := attacktree.SpoofingTree("u1")
	if err := e.Monitor("u1", tr); err != nil {
		t.Fatal(err)
	}
	var compromiseAt float64 = -1
	_ = e.OnEvent(func(ev Event) {
		if ev.RootReached && compromiseAt < 0 {
			compromiseAt = ev.Alert.Stamp
		}
	})

	u, _ := w.AddUAV(uavsim.UAVConfig{ID: "u1", Home: origin})
	if err := u.TakeOff(25); err != nil {
		t.Fatal(err)
	}
	_ = w.Run(10, 1)
	_ = u.FlyMission([]geo.LatLng{geo.Destination(origin, 90, 500)}, 25)
	_ = w.ScheduleFault(uavsim.GPSSpoofFault(15, "u1", 180, 3))
	_ = w.Run(60, 1)

	if compromiseAt < 0 {
		t.Fatal("spoofing attack never reported")
	}
	if compromiseAt < 15 || compromiseAt > 30 {
		t.Fatalf("compromise at t=%v, want shortly after 15", compromiseAt)
	}
}

func BenchmarkIngest(b *testing.B) {
	broker := mqttlite.NewBroker()
	e, _ := New(broker)
	defer e.Close()
	tr, _ := attacktree.SpoofingTree("u1")
	_ = e.Monitor("u1", tr)
	payload, _ := json.Marshal(ids.Alert{Type: ids.AlertGPSAnomaly, UAV: "u1", Stamp: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset("u1")
		_ = broker.Publish(ids.AlertTopic("u1"), payload, false)
	}
}
