package security

import "sort"

// State is the security EDDI's serializable progress for the flight
// recorder (internal/flightrec). The attack trees, broker
// subscriptions and handlers are wiring the rebuilt platform restores;
// only the evolving compromise bookkeeping is checkpointed.
type State struct {
	// Triggered maps UAV id -> sorted list of satisfied leaf ids.
	Triggered map[string][]string `json:"triggered"`
	// Reported are the uav+"/"+root keys already escalated, sorted.
	Reported []string `json:"reported"`
	Events   []Event  `json:"events"`
}

// State exports the compromise bookkeeping.
func (e *EDDI) State() State {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := State{
		Triggered: make(map[string][]string, len(e.triggered)),
		Events:    append([]Event(nil), e.events...),
	}
	for uav, leaves := range e.triggered {
		ids := make([]string, 0, len(leaves))
		for id := range leaves {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		s.Triggered[uav] = ids
	}
	for key := range e.reported {
		s.Reported = append(s.Reported, key)
	}
	sort.Strings(s.Reported)
	return s
}

// Restore overwrites the compromise bookkeeping. Monitored trees and
// handlers are untouched: the rebuilt platform re-registers those.
func (e *EDDI) Restore(s State) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.triggered = make(map[string]map[string]bool, len(s.Triggered))
	for uav, leaves := range s.Triggered {
		set := make(map[string]bool, len(leaves))
		for _, id := range leaves {
			set[id] = true
		}
		e.triggered[uav] = set
	}
	e.reported = make(map[string]bool, len(s.Reported))
	for _, key := range s.Reported {
		e.reported[key] = true
	}
	e.events = append(e.events[:0:0], s.Events...)
}
