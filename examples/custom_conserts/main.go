// Custom ConSerts: build a composition of your own — here a delivery
// drone whose "deliver" guarantee demands a geofence subsystem
// guarantee and reliability evidence — showing the engine is not tied
// to the paper's Fig. 1 UAV network.
package main

import (
	"fmt"
	"log"

	"sesame/internal/conserts"
)

func main() {
	// Subsystem ConSert: the geofence monitor certifies containment
	// when its position source is healthy.
	geofence := &conserts.ConSert{
		Name: "geofence",
		Guarantees: []conserts.Guarantee{{
			ID: "contained", Rank: 1,
			Description: "vehicle provably inside the approved corridor",
			Cond:        conserts.And(conserts.RtE("position-valid"), conserts.RtE("corridor-loaded")),
		}},
	}
	// Vehicle ConSert: three ranked behaviours over the geofence
	// guarantee plus local evidence.
	vehicle := &conserts.ConSert{
		Name: "delivery-drone",
		Guarantees: []conserts.Guarantee{
			{
				ID: "deliver", Rank: 3,
				Description: "fly the delivery leg",
				Cond: conserts.And(
					conserts.Demand("geofence", "contained"),
					conserts.RtE("payload-secure"),
					conserts.RtE("battery-ok"),
				),
			},
			{
				ID: "loiter", Rank: 2,
				Description: "hold inside the corridor",
				Cond: conserts.And(
					conserts.Demand("geofence", "contained"),
					conserts.RtE("battery-ok"),
				),
			},
			{
				ID: "abort-home", Rank: 1,
				Description: "return along the recorded track",
				Cond:        conserts.RtE("battery-ok"),
			},
		},
	}
	comp, err := conserts.NewComposition(geofence, vehicle)
	if err != nil {
		log.Fatal(err)
	}

	scenarios := []struct {
		name string
		ev   conserts.Evidence
	}{
		{"all nominal", conserts.Evidence{
			"position-valid": true, "corridor-loaded": true,
			"payload-secure": true, "battery-ok": true,
		}},
		{"payload shifted", conserts.Evidence{
			"position-valid": true, "corridor-loaded": true, "battery-ok": true,
		}},
		{"GPS glitch", conserts.Evidence{
			"corridor-loaded": true, "payload-secure": true, "battery-ok": true,
		}},
		{"battery low", conserts.Evidence{
			"position-valid": true, "corridor-loaded": true, "payload-secure": true,
		}},
	}
	for _, sc := range scenarios {
		results := comp.Evaluate(sc.ev)
		best := results["delivery-drone"].Best
		label := "none (apply modelled default)"
		if best != nil {
			label = fmt.Sprintf("%s (%s)", best.ID, best.Description)
		}
		fmt.Printf("%-16s -> %s\n", sc.name, label)
	}
}
