// Quickstart: fly one simulated UAV, watch SafeDrones assess its
// reliability in real time, and let the Fig. 1 ConSert network pick
// the flight action.
package main

import (
	"fmt"
	"log"

	"sesame"
)

func main() {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}

	// A deterministic simulated world with one quadrotor.
	world := sesame.NewWorld(home, 42)
	uav, err := world.AddUAV(sesame.UAVConfig{ID: "u1", Home: home})
	if err != nil {
		log.Fatal(err)
	}

	// The SafeDrones runtime reliability monitor and the ConSert
	// network that consumes its output.
	monitor, err := sesame.NewSafetyMonitor("u1", sesame.DefaultSafetyConfig())
	if err != nil {
		log.Fatal(err)
	}
	conserts, err := sesame.BuildUAVComposition()
	if err != nil {
		log.Fatal(err)
	}

	// Take off and fly a short survey leg.
	if err := uav.TakeOff(30); err != nil {
		log.Fatal(err)
	}
	if err := world.Run(12, 1); err != nil {
		log.Fatal(err)
	}
	wp := sesame.Destination(home, 90, 500)
	if err := uav.FlyMission([]sesame.LatLng{wp}, 30); err != nil {
		log.Fatal(err)
	}

	for t := 0; t < 60; t++ {
		if err := world.Step(1); err != nil {
			log.Fatal(err)
		}
		assessment, err := monitor.Observe(sesame.SafetyTelemetry{
			Time:      world.Clock.Now(),
			ChargePct: uav.Battery.ChargePct,
			TempC:     uav.Battery.TempC,
			CommsOK:   true,
			Airborne:  uav.Mode().Airborne(),
		})
		if err != nil {
			log.Fatal(err)
		}
		// Map EDDI outputs onto ConSert runtime evidence.
		action, _, err := sesame.EvaluateUAV(conserts, sesame.Evidence{
			"gps-quality-ok":            true,
			"no-spoofing":               true,
			"camera-healthy":            true,
			"perception-confident":      true,
			"nearby-drone-detection-ok": true,
			"comms-ok":                  true,
			"neighbors-available":       false,
			"reliability-high":          assessment.Level == sesame.ReliabilityHigh,
			"reliability-medium":        assessment.Level == sesame.ReliabilityMedium,
		})
		if err != nil {
			log.Fatal(err)
		}
		if t%10 == 0 {
			fmt.Printf("t=%3.0fs  pos=%v  battery=%.1f%%  PoF=%.4f  reliability=%s  action=%s\n",
				world.Clock.Now(), uav.TruePosition(), uav.Battery.ChargePct,
				assessment.PoF, assessment.Level, action)
		}
	}
	fmt.Println("quickstart complete")
}
