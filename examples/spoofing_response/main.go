// Spoofing response: the §V-C security scenario wired by hand — a GPS
// spoofing attack on a mapping UAV, detected by the IDS + attack-tree
// Security EDDI, mitigated by Collaborative Localization landing the
// victim at a safe point without GPS.
package main

import (
	"fmt"
	"log"

	"sesame"
)

func main() {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	world := sesame.NewWorld(home, 11)

	victim, err := world.AddUAV(sesame.UAVConfig{ID: "victim", Home: home, CruiseSpeedMS: 10})
	if err != nil {
		log.Fatal(err)
	}
	var observers []*sesame.Observer
	for i, id := range []string{"assist1", "assist2"} {
		a, err := world.AddUAV(sesame.UAVConfig{ID: id, Home: sesame.Destination(home, float64(i)*180+60, 160)})
		if err != nil {
			log.Fatal(err)
		}
		if err := a.TakeOff(32); err != nil {
			log.Fatal(err)
		}
		o, err := sesame.NewObserver(a, world, "obs/"+id)
		if err != nil {
			log.Fatal(err)
		}
		observers = append(observers, o)
	}

	// Security chain: IDS taps the bus, alerts flow over the broker,
	// the Security EDDI walks the attack tree.
	broker := sesame.NewAlertBroker()
	detector, err := sesame.NewIntrusionDetector(world, broker, sesame.DefaultIDSConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer detector.Close()
	eddi, err := sesame.NewSecurityEDDI(broker)
	if err != nil {
		log.Fatal(err)
	}
	defer eddi.Close()
	tree, err := sesame.SpoofingAttackTree("victim")
	if err != nil {
		log.Fatal(err)
	}
	if err := eddi.Monitor("victim", tree); err != nil {
		log.Fatal(err)
	}

	compromised := make(chan sesame.SecurityEvent, 1)
	if err := eddi.OnEvent(func(ev sesame.SecurityEvent) {
		if ev.RootReached {
			select {
			case compromised <- ev:
			default:
			}
		}
	}); err != nil {
		log.Fatal(err)
	}

	// Fly a mapping leg and start the attack at t=25.
	if err := victim.TakeOff(25); err != nil {
		log.Fatal(err)
	}
	if err := world.Run(10, 1); err != nil {
		log.Fatal(err)
	}
	if err := victim.FlyMission([]sesame.LatLng{sesame.Destination(home, 90, 600)}, 25); err != nil {
		log.Fatal(err)
	}
	if err := world.ScheduleFault(sesame.GPSSpoofFault(25, "victim", 225, 3)); err != nil {
		log.Fatal(err)
	}

	var event sesame.SecurityEvent
	for world.Clock.Now() < 120 {
		if err := world.Step(1); err != nil {
			log.Fatal(err)
		}
		select {
		case event = <-compromised:
		default:
			continue
		}
		break
	}
	if event.Root == "" {
		log.Fatal("attack was not detected")
	}
	fmt.Printf("t=%.0f: Security EDDI reports compromise %q\n", world.Clock.Now(), event.Root)
	fmt.Printf("  attack path: %v\n", event.Path)
	fmt.Printf("  mitigation:  %s\n", event.Mitigation)

	// Mitigation: distrust GPS and land collaboratively.
	victim.GPS.Mode = sesame.GPSModeDropout // no usable GPS, per the paper's Fig. 7
	safe := sesame.Destination(home, 135, 130)
	landing, err := sesame.NewAssistedLanding(victim, safe, observers, world)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1200 && victim.Mode() != sesame.ModeLanded; i++ {
		landing.Step()
		if err := world.Step(0.5); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("t=%.0f: victim landed %.2f m from the designated safe point (GPS-denied)\n",
		world.Clock.Now(), landing.LandingError())
}
