// Reliability monitor: the Fig. 5 experiment as a library user would
// write it — feed the SafeDrones monitor the paper's battery-collapse
// telemetry under both policies and print the PoF curves side by side.
package main

import (
	"fmt"
	"log"

	"sesame"
)

func telemetryAt(t float64) sesame.SafetyTelemetry {
	tel := sesame.SafetyTelemetry{Time: t, CommsOK: true, Airborne: true}
	if t < 250 {
		tel.ChargePct = 80
		tel.TempC = 35
	} else {
		// The §V-A fault: charge collapses 80% -> 40%, pack overheats.
		tel.ChargePct = 40
		tel.TempC = 70
		tel.Overheating = true
	}
	return tel
}

func main() {
	eddiCfg := sesame.DefaultSafetyConfig()
	eddiCfg.Policy = sesame.PolicyEDDI
	reactiveCfg := sesame.DefaultSafetyConfig()
	reactiveCfg.Policy = sesame.PolicyReactive

	eddi, err := sesame.NewSafetyMonitor("u1", eddiCfg)
	if err != nil {
		log.Fatal(err)
	}
	reactive, err := sesame.NewSafetyMonitor("u1", reactiveCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("t(s)    PoF(EDDI)  advice(EDDI)      PoF(react)  advice(react)")
	crossed := false
	for t := 0.0; t <= 600; t++ {
		tel := telemetryAt(t)
		ae, err := eddi.Observe(tel)
		if err != nil {
			log.Fatal(err)
		}
		ar, err := reactive.Observe(tel)
		if err != nil {
			log.Fatal(err)
		}
		if int(t)%50 == 0 {
			fmt.Printf("%4.0f    %9.4f  %-16s  %10.4f  %s\n",
				t, ae.PoF, ae.Advice, ar.PoF, ar.Advice)
		}
		if !crossed && ae.Advice == sesame.SafetyEmergencyLand {
			fmt.Printf("---- EDDI emergency threshold (PoF 0.9) crossed at t=%.0f s (paper: ~510 s) ----\n", t)
			crossed = true
		}
	}
	if !crossed {
		fmt.Println("threshold never crossed within 600 s")
	}
}
