// Degraded comms: a three-UAV SAR mission flown over a faulty C2 link.
// A seeded link layer duplicates the occasional telemetry frame on
// every channel and severs u2's link completely for 40 s mid-mission.
// The ground station's staleness tracker surfaces the growing
// telemetry age, the lost-link watchdog fires the return-to-base
// contingency after 15 s of silence, u2's search task is redistributed
// to the survivors, and the mission completes — with every lost frame
// accounted for. Running the program twice prints identical output:
// the fault layer is deterministic given the world seed.
package main

import (
	"fmt"
	"log"
	"strings"

	"sesame"
)

func main() {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	world := sesame.NewWorld(home, 42)
	for _, id := range []string{"u1", "u2", "u3"} {
		if _, err := world.AddUAV(sesame.UAVConfig{ID: id, Home: home, CruiseSpeedMS: 12}); err != nil {
			log.Fatal(err)
		}
	}
	platform, err := sesame.NewPlatform(world, nil, sesame.DefaultPlatformConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	// The link layer sits between the UAVs and the ground station: bus
	// telemetry and broker alerts for a UAV cross its configured link.
	links := sesame.NewLinkLayer(world, "field")
	links.AttachBroker(platform.Broker, func(topic string) string {
		if uav, ok := strings.CutPrefix(topic, "alerts/ids/"); ok {
			return uav
		}
		return ""
	})
	for _, id := range []string{"u1", "u2", "u3"} {
		links.Link(id).SetProfile(sesame.LinkProfile{DupProb: 0.08})
	}

	area := sesame.Polygon{
		sesame.Destination(home, 45, 80),
		sesame.Destination(sesame.Destination(home, 45, 80), 90, 320),
		sesame.Destination(sesame.Destination(sesame.Destination(home, 45, 80), 90, 320), 0, 320),
		sesame.Destination(sesame.Destination(home, 45, 80), 0, 320),
	}
	if err := platform.StartMission(area); err != nil {
		log.Fatal(err)
	}
	start := world.Clock.Now()
	links.Link("u2").AddOutage(start+60, start+100)
	fmt.Printf("t=  0: mission started, u2 link loss scheduled for t=[60, 100]\n")

	lostReported := false
	for world.Clock.Now() < start+1800 {
		if err := platform.Tick(); err != nil {
			log.Fatal(err)
		}
		st := platform.Status()
		for _, u := range st.UAVs {
			if u.ID == "u2" && u.LinkLost && !lostReported {
				lostReported = true
				fmt.Printf("t=%3.0f: u2 telemetry silent for %.0f s -> lost-link contingency (task redistributed)\n",
					world.Clock.Now()-start, u.TelemetryAgeS)
			}
		}
		if platform.MissionComplete() {
			break
		}
	}

	st := platform.Status()
	fmt.Printf("t=%3.0f: mission complete\n", world.Clock.Now()-start)
	for _, ev := range platform.Coordinator.History("u2") {
		if strings.HasPrefix(ev.Summary, "lost link:") {
			fmt.Printf("  EDDI event: %s\n", ev.Summary)
		}
	}
	for _, id := range []string{"u1", "u2", "u3"} {
		s := links.Stats()[id]
		fmt.Printf("  link %s: offered %d, delivered %d, duplicated %d, lost to outage %d\n",
			id, s.Offered, s.Delivered, s.Duplicated, s.OutageDropped)
	}
	fmt.Printf("  platform drops: %d, database retries: %d scheduled / %d succeeded\n",
		st.Drops.Total(), st.DBRetries.Scheduled, st.DBRetries.Succeeded)
}
