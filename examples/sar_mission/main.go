// SAR mission: the paper's headline scenario — three UAVs sweep a
// search area on the integrated platform with the full SESAME EDDI
// stack active, a battery fault strikes one vehicle mid-mission, and
// the fleet adapts (the §V-A behaviour).
package main

import (
	"fmt"
	"log"

	"sesame"
)

func main() {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	world := sesame.NewWorld(home, 7)
	for _, id := range []string{"u1", "u2", "u3"} {
		if _, err := world.AddUAV(sesame.UAVConfig{ID: id, Home: home, CruiseSpeedMS: 12}); err != nil {
			log.Fatal(err)
		}
	}

	// A 400 m x 400 m search area north-east of the launch point, with
	// twelve persons to find.
	a := sesame.Destination(home, 45, 80)
	b := sesame.Destination(a, 90, 400)
	c := sesame.Destination(b, 0, 400)
	d := sesame.Destination(a, 0, 400)
	area := sesame.Polygon{a, b, c, d}
	scene, err := sesame.NewRandomScene(area, 12, 0.25, world, "scene")
	if err != nil {
		log.Fatal(err)
	}

	p, err := sesame.NewPlatform(world, scene, sesame.DefaultPlatformConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	if err := p.StartMission(area); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mission started: 3 UAVs sweeping", int(area.AreaSquareMeters()), "m^2")

	// Battery collapse on u1 one minute in — the §V-A fault.
	if err := world.ScheduleFault(sesame.BatteryCollapseFault(world.Clock.Now()+60, "u1", 70, 40)); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 1200; i++ {
		if err := p.Tick(); err != nil {
			log.Fatal(err)
		}
		if i%120 == 0 {
			s := p.Status()
			fmt.Printf("t=%5.0f decision=%s\n", s.Time, s.Decision)
			for _, u := range s.UAVs {
				fmt.Printf("   %-3s %-18s batt=%5.1f%% PoF=%.3f wps=%d\n",
					u.ID, u.Mode, u.BatteryPct, u.PoF, u.Waypoints)
			}
		}
		if allIdle(p) {
			break
		}
	}
	av, err := p.Availability()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmission over: fleet availability %.1f%%, decision %s\n", av*100, p.Decision())
}

func allIdle(p *sesame.Platform) bool {
	for _, u := range p.Status().UAVs {
		switch u.Mode {
		case "mission", "return-to-base", "landing", "emergency-landing":
			return false
		}
	}
	return true
}
