// Night operations: the same SAR mission flown at visibility 0.3 with
// the platform's automatic thermal-imaging switch on and off, showing
// why the paper's motivation lists thermal imaging alongside RGB
// cameras for "conditions with low visibility".
package main

import (
	"fmt"
	"log"

	"sesame"
)

func runMission(useThermal bool) (worstUncertainty float64, rescuedDescends int) {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	world := sesame.NewWorld(home, 23)
	for _, id := range []string{"u1", "u2", "u3"} {
		if _, err := world.AddUAV(sesame.UAVConfig{ID: id, Home: home, CruiseSpeedMS: 12}); err != nil {
			log.Fatal(err)
		}
	}
	a := sesame.Destination(home, 45, 80)
	b := sesame.Destination(a, 90, 350)
	c := sesame.Destination(b, 0, 350)
	d := sesame.Destination(a, 0, 350)
	area := sesame.Polygon{a, b, c, d}
	scene, err := sesame.NewRandomScene(area, 10, 0.2, world, "scene")
	if err != nil {
		log.Fatal(err)
	}
	cfg := sesame.DefaultPlatformConfig()
	cfg.Visibility = 0.3 // night / heavy haze
	cfg.SurveyAltitudeM = 30
	if !useThermal {
		cfg.UseThermalBelow = 0 // force the RGB camera
	}
	p, err := sesame.NewPlatform(world, scene, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	if err := p.StartMission(area); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 900; i++ {
		if err := p.Tick(); err != nil {
			log.Fatal(err)
		}
	}
	for _, ev := range p.Coordinator.History("") {
		if ev.Kind.String() == "perception" && ev.Severity > worstUncertainty {
			worstUncertainty = ev.Severity
		}
	}
	for _, u := range p.Status().UAVs {
		rescuedDescends += u.Rescans
	}
	return worstUncertainty, rescuedDescends
}

func main() {
	uThermal, _ := runMission(true)
	uRGB, _ := runMission(false)
	fmt.Printf("night mission, visibility 0.3:\n")
	fmt.Printf("  thermal pipeline: worst perception uncertainty %.1f%%\n", uThermal*100)
	fmt.Printf("  RGB pipeline:     worst perception uncertainty %.1f%%\n", uRGB*100)
	if uThermal < uRGB {
		fmt.Println("thermal imaging keeps the perception monitor in its comfort zone at night")
	}
}
