// SafeML drift detection: watch the perception monitor's uncertainty
// rise as a UAV's survey altitude pushes the camera-feature
// distribution away from the training reference — the §V-B trigger —
// and compare the five statistical distance measures on the same data.
package main

import (
	"fmt"
	"log"

	"sesame"
)

func main() {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	world := sesame.NewWorld(home, 99)
	detector, err := sesame.NewDetector(world, "detector")
	if err != nil {
		log.Fatal(err)
	}

	// Training reference: features captured at the 25 m reference
	// altitude.
	reference := detector.ReferenceFeatures(300)

	scene := &sesame.Scene{} // empty scene: we only need the features
	scene.Area = sesame.Polygon{
		home,
		sesame.Destination(home, 90, 200),
		sesame.Destination(sesame.Destination(home, 90, 200), 0, 200),
		sesame.Destination(home, 0, 200),
	}

	fmt.Println("altitude sweep with the default (Kolmogorov-Smirnov) monitor:")
	for _, alt := range []float64{25, 35, 45, 60} {
		monitor, err := sesame.NewPerceptionMonitor(reference, sesame.DefaultPerceptionConfig())
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			frame, err := detector.Capture("u1", float64(i), home,
				sesame.DetectionConditions{AltitudeM: alt, Visibility: 1}, scene)
			if err != nil {
				log.Fatal(err)
			}
			if err := monitor.Push(frame.Features); err != nil {
				log.Fatal(err)
			}
		}
		report, err := monitor.Evaluate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  alt=%2.0f m  distance=%.3f  uncertainty=%5.1f%%  action=%s\n",
			alt, report.Distance, report.Uncertainty*100, report.Action)
	}

	fmt.Println("\nsame drift, all five distance measures (alt 60 m window):")
	for _, m := range sesame.DistanceMeasures() {
		cfg := sesame.DefaultPerceptionConfig()
		cfg.Measure = m
		monitor, err := sesame.NewPerceptionMonitor(reference, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			frame, err := detector.Capture("u1", float64(i), home,
				sesame.DetectionConditions{AltitudeM: 60, Visibility: 1}, scene)
			if err != nil {
				log.Fatal(err)
			}
			_ = monitor.Push(frame.Features)
		}
		report, err := monitor.Evaluate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s distance=%8.3f  action=%s\n", m.Name(), report.Distance, report.Action)
	}
}
