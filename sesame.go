// Package sesame is the public API of the SESAME multi-UAV
// safety/security/dependability stack — a faithful, pure-Go
// reproduction of "Multi-Partner Project: Safe, Secure and Dependable
// Multi-UAV Systems for Search and Rescue Operations" (DATE 2025).
//
// The package re-exports the stable surface of the internal
// subsystems:
//
//   - UAV & world simulation (substitute for the DJI/Gazebo testbed)
//   - SafeDrones runtime reliability monitoring (Markov + fault trees)
//   - SafeML statistical-distance perception monitoring
//   - DeepKnowledge neuron-coverage analysis
//   - SINADRA Bayesian dynamic risk assessment
//   - the IDS + attack-tree Security EDDI chain
//   - Collaborative Localization (GPS-denied assisted landing)
//   - ConSerts (conditional safety certificates) and the Fig. 1 model
//   - the integrated multi-UAV control platform and SAR algorithms
//
// Quick start: see examples/quickstart, or:
//
//	world := sesame.NewWorld(sesame.LatLng{Lat: 35.18, Lng: 33.38}, 42)
//	uav, _ := world.AddUAV(sesame.UAVConfig{ID: "u1", Home: home})
//	monitor, _ := sesame.NewSafetyMonitor("u1", sesame.DefaultSafetyConfig())
package sesame

import (
	"sesame/internal/conserts"
	"sesame/internal/geo"
	"sesame/internal/rosbus"
	"sesame/internal/safedrones"
	"sesame/internal/uavsim"
)

// ---- Geodesy (internal/geo) ----

// LatLng is a geodetic coordinate in degrees.
type LatLng = geo.LatLng

// ENU is a local east-north tangent-plane coordinate in metres.
type ENU = geo.ENU

// Polygon is a closed mission-area region.
type Polygon = geo.Polygon

// Projection maps between geodetic and local ENU coordinates.
type Projection = geo.Projection

// BearingObservation is a bearing(+range) sighting used by
// Collaborative Localization.
type BearingObservation = geo.BearingObservation

// Haversine returns the great-circle distance in metres between a and b.
func Haversine(a, b LatLng) float64 { return geo.Haversine(a, b) }

// InitialBearing returns the initial bearing from a to b in degrees.
func InitialBearing(a, b LatLng) float64 { return geo.InitialBearing(a, b) }

// Destination returns the point distance metres from origin along
// bearingDeg.
func Destination(origin LatLng, bearingDeg, distance float64) LatLng {
	return geo.Destination(origin, bearingDeg, distance)
}

// NewProjection returns a local tangent-plane projection at origin.
func NewProjection(origin LatLng) *Projection { return geo.NewProjection(origin) }

// Triangulate fuses bearing/range observations into a position fix.
func Triangulate(obs []BearingObservation) (LatLng, error) { return geo.Triangulate(obs) }

// ---- UAV & world simulation (internal/uavsim) ----

// World owns the simulated environment: clock, bus, fleet, wind and
// fault schedule.
type World = uavsim.World

// UAV is one simulated multirotor.
type UAV = uavsim.UAV

// UAVConfig parameterizes a vehicle.
type UAVConfig = uavsim.UAVConfig

// Battery is the simulated flight battery.
type Battery = uavsim.Battery

// GPSFix, BatteryState, HealthState and StatusReport are the telemetry
// payloads published on the bus.
type (
	GPSFix       = uavsim.GPSFix
	BatteryState = uavsim.BatteryState
	HealthState  = uavsim.HealthState
	StatusReport = uavsim.StatusReport
)

// FlightMode is the vehicle's control regime.
type FlightMode = uavsim.FlightMode

// Flight modes.
const (
	ModeIdle             = uavsim.ModeIdle
	ModeMission          = uavsim.ModeMission
	ModeHold             = uavsim.ModeHold
	ModeReturnToBase     = uavsim.ModeReturnToBase
	ModeLanding          = uavsim.ModeLanding
	ModeEmergencyLanding = uavsim.ModeEmergencyLanding
	ModeLanded           = uavsim.ModeLanded
	ModeCrashed          = uavsim.ModeCrashed
)

// Fault is a scheduled fault injection.
type Fault = uavsim.Fault

// GPSMode selects the GPS receiver's condition.
type GPSMode = uavsim.GPSMode

// GPS receiver conditions.
const (
	GPSModeNominal  = uavsim.GPSModeNominal
	GPSModeDegraded = uavsim.GPSModeDegraded
	GPSModeDropout  = uavsim.GPSModeDropout
	GPSModeSpoofed  = uavsim.GPSModeSpoofed
)

// NewWorld creates a simulation world centred at origin, seeded for
// bit-for-bit reproducibility.
func NewWorld(origin LatLng, seed int64) *World { return uavsim.NewWorld(origin, seed) }

// BatteryCollapseFault reproduces the paper's §V-A battery event.
func BatteryCollapseFault(at float64, uav string, tempC, chargePct float64) Fault {
	return uavsim.BatteryCollapseFault(at, uav, tempC, chargePct)
}

// GPSSpoofFault starts the §V-C GPS/position spoofing attack.
func GPSSpoofFault(at float64, uav string, bearingDeg, driftMS float64) Fault {
	return uavsim.GPSSpoofFault(at, uav, bearingDeg, driftMS)
}

// RotorFailureFault fails one rotor.
func RotorFailureFault(at float64, uav string, idx int) Fault {
	return uavsim.RotorFailureFault(at, uav, idx)
}

// ---- Bus recording (internal/rosbus) ----

// BusRecorder captures bus traffic for later replay (the rosbag
// equivalent).
type BusRecorder = rosbus.Recorder

// BusMessage is one captured bus datagram.
type BusMessage = rosbus.Message

// NewBusRecorder attaches a recorder to the world's bus.
func NewBusRecorder(w *World) (*BusRecorder, error) { return rosbus.NewRecorder(w.Bus) }

// ReplayBus publishes a recording into the world's bus; topics filters
// when non-nil.
func ReplayBus(w *World, recording []BusMessage, topics map[string]bool) (int, error) {
	return rosbus.Replay(w.Bus, recording, topics)
}

// ---- SafeDrones (internal/safedrones) ----

// SafetyMonitor is the SafeDrones per-UAV runtime reliability monitor.
type SafetyMonitor = safedrones.Monitor

// SafetyConfig parameterizes a SafetyMonitor.
type SafetyConfig = safedrones.Config

// SafetyTelemetry is one observation fed to the monitor.
type SafetyTelemetry = safedrones.Telemetry

// SafetyAssessment is the monitor's output.
type SafetyAssessment = safedrones.Assessment

// ReliabilityLevel grades the reliability estimate.
type ReliabilityLevel = safedrones.Level

// Reliability levels.
const (
	ReliabilityHigh   = safedrones.LevelHigh
	ReliabilityMedium = safedrones.LevelMedium
	ReliabilityLow    = safedrones.LevelLow
)

// SafetyAdvice is SafeDrones' mission adaptation proposal.
type SafetyAdvice = safedrones.Advice

// Safety advice values.
const (
	SafetyContinue      = safedrones.AdviceContinue
	SafetyHold          = safedrones.AdviceHold
	SafetyReturnToBase  = safedrones.AdviceReturnToBase
	SafetyEmergencyLand = safedrones.AdviceEmergencyLand
)

// SafetyPolicy selects EDDI vs reactive-baseline behaviour.
type SafetyPolicy = safedrones.Policy

// Policies.
const (
	PolicyReactive = safedrones.PolicyReactive
	PolicyEDDI     = safedrones.PolicyEDDI
)

// DefaultSafetyConfig returns the paper's calibration.
func DefaultSafetyConfig() SafetyConfig { return safedrones.DefaultConfig() }

// NewSafetyMonitor builds a SafeDrones monitor for the named UAV.
func NewSafetyMonitor(uav string, cfg SafetyConfig) (*SafetyMonitor, error) {
	return safedrones.NewMonitor(uav, cfg)
}

// ---- ConSerts (internal/conserts) ----

// Evidence carries runtime evidence truth values.
type Evidence = conserts.Evidence

// Composition is a wired set of ConSerts.
type Composition = conserts.Composition

// UAVAction is the flight action the Fig. 1 UAV ConSert selects.
type UAVAction = conserts.UAVAction

// UAV actions.
const (
	ActionEmergencyLand    = conserts.ActionEmergencyLand
	ActionReturnToBase     = conserts.ActionReturnToBase
	ActionHold             = conserts.ActionHold
	ActionContinue         = conserts.ActionContinue
	ActionContinueTakeover = conserts.ActionContinueTakeover
)

// MissionDecision is the mission-level decider outcome.
type MissionDecision = conserts.MissionDecision

// Mission decisions.
const (
	MissionAsPlanned    = conserts.MissionAsPlanned
	MissionRedistribute = conserts.MissionRedistribute
	MissionAbort        = conserts.MissionAbort
)

// BuildUAVComposition wires the paper's Fig. 1 ConSert network.
func BuildUAVComposition() (*Composition, error) { return conserts.BuildUAVComposition() }

// EvaluateUAV resolves the composition and maps the best guarantee to
// a flight action.
func EvaluateUAV(comp *Composition, ev Evidence) (UAVAction, map[string]conserts.Result, error) {
	return conserts.EvaluateUAV(comp, ev)
}

// DecideMission aggregates per-UAV actions into the mission decision.
func DecideMission(actions map[string]UAVAction) (MissionDecision, error) {
	return conserts.DecideMission(actions)
}
