package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"sesame"
)

// TestFeedMatchesPlatformHandler proves the copy-on-write feed is
// byte-compatible with the platform's own HTTP handler: same status
// document, same event history, with and without the ?uav= filter.
func TestFeedMatchesPlatformHandler(t *testing.T) {
	g, err := newGCS(defaultGCSOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer g.p.Close()
	for i := 0; i < 40; i++ {
		if err := g.tick(); err != nil {
			t.Fatal(err)
		}
	}

	legacy := sesame.PlatformHandler(g.p)
	for _, path := range []string{"/", "/events", "/events?uav=u1", "/events?uav=nobody"} {
		want := httptest.NewRecorder()
		legacy.ServeHTTP(want, httptest.NewRequest("GET", path, nil))
		got := httptest.NewRecorder()
		g.handler().ServeHTTP(got, httptest.NewRequest("GET", path, nil))
		if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
			t.Errorf("GET %s: feed diverged from platform handler:\n got %s\nwant %s",
				path, truncate(got.Body.String()), truncate(want.Body.String()))
		}
	}
}

// TestFeedLockFree proves the JSON feed is served even while the tick
// mutex is held: watchers read the published snapshot, never the
// platform.
func TestFeedLockFree(t *testing.T) {
	g, err := newGCS(defaultGCSOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer g.p.Close()

	g.mu.Lock()
	defer g.mu.Unlock()
	for _, path := range []string{"/", "/events"} {
		rec := httptest.NewRecorder()
		done := make(chan struct{})
		go func() {
			g.handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("GET %s blocked on the tick mutex", path)
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s under held tick lock: status %d", path, rec.Code)
		}
	}
}

func TestParseArgsMultiRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-multi", "-spoof", "30"},
		{"-multi", "-blackbox", "box"},
		{"-multi", "-max-live", "0"},
		{"-multi", "-tick-budget", "0"},
		{"-multi", "-idle-rounds", "-1"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("parseArgs(%v) must fail", args)
		}
	}
	o, err := parseArgs([]string{"-multi", "-park-dir", "p", "-max-live", "8"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.multi || o.parkDir != "p" || o.maxLive != 8 || o.maxMissions != 4096 {
		t.Fatalf("multi flags not applied: %+v", o)
	}
}

// syncBuffer is a goroutine-safe writer the serve loop logs into.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var addrRE = regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)

// startServe runs serve in the background on an ephemeral port and
// waits for the listening line; the returned channel delivers serve's
// error after a stop signal.
func startServe(t *testing.T, opts gcsOptions, out *syncBuffer, stop chan os.Signal) (string, chan error) {
	t.Helper()
	errCh := make(chan error, 1)
	go func() { errCh <- serve(opts, out, stop) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			return m[1], errCh
		}
		select {
		case err := <-errCh:
			t.Fatalf("serve exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never printed its address:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeSingleGracefulShutdown sends the station a stop signal and
// expects a clean exit: serve returns nil (the process would exit 0).
func TestServeSingleGracefulShutdown(t *testing.T) {
	opts := defaultGCSOptions()
	opts.addr = "127.0.0.1:0"
	opts.tickMS = 10
	out := &syncBuffer{}
	stop := make(chan os.Signal, 1)
	addr, errCh := startServe(t, opts, out, stop)

	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatalf("GET /: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET / -> %d", resp.StatusCode)
	}

	stop <- os.Interrupt
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not stop after the signal")
	}
	if !strings.Contains(out.String(), "stopped") {
		t.Fatalf("no stop confirmation in output:\n%s", out.String())
	}
}

// TestServeMultiKillRestartRoundTrip is the CLI-level recovery check:
// a multi-mission station is stopped with live missions on board, and
// a fresh station over the same -park-dir recovers every one of them,
// parked at the tick they were checkpointed at, flyable to completion.
func TestServeMultiKillRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := defaultGCSOptions()
	opts.addr = "127.0.0.1:0"
	opts.tickMS = 5
	opts.multi = true
	opts.parkDir = dir
	opts.tickBudget = 2

	out := &syncBuffer{}
	stop := make(chan os.Signal, 1)
	addr, errCh := startServe(t, opts, out, stop)

	// Create a couple of missions and let them fly a little.
	for i := 1; i <= 3; i++ {
		body := fmt.Sprintf(`{"id":"m%d","seed":%d,"uavs":2,"persons":2,"horizon_s":300}`, i, i)
		resp, err := http.Post("http://"+addr+"/missions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST mission: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST mission m%d -> %d", i, resp.StatusCode)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/missions/m1")
		if err != nil {
			t.Fatal(err)
		}
		var info sesame.MissionInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if info.Tick > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("missions never advanced")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill the station.
	stop <- os.Interrupt
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("multi shutdown returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("multi serve did not stop after the signal")
	}

	// Restart over the same park directory: the fleet comes back.
	out2 := &syncBuffer{}
	stop2 := make(chan os.Signal, 1)
	addr2, errCh2 := startServe(t, opts, out2, stop2)
	resp, err := http.Get("http://" + addr2 + "/missions")
	if err != nil {
		t.Fatal(err)
	}
	var list []sesame.MissionInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 3 {
		t.Fatalf("recovered %d missions, want 3: %+v", len(list), list)
	}
	for _, info := range list {
		if info.State != "parked" {
			t.Errorf("recovered mission %s state = %q, want parked", info.ID, info.State)
		}
		if info.Tick == 0 {
			t.Errorf("recovered mission %s lost its progress", info.ID)
		}
	}
	// A status read answers from the persisted snapshot — parked
	// missions stay parked until a watcher subscribes.
	resp, err = http.Get("http://" + addr2 + "/missions/m1/status")
	if err != nil {
		t.Fatal(err)
	}
	var snap sesame.MissionSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Tick == 0 {
		t.Fatalf("status after restart = %+v", snap)
	}

	stop2 <- os.Interrupt
	select {
	case err := <-errCh2:
		if err != nil {
			t.Fatalf("second shutdown returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("second serve did not stop after the signal")
	}
}
