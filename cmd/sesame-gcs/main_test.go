package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseArgsDefaults(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" || o.seed != 1 || o.tickMS != 200 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
	if o.uavs != 3 || o.cells != 0 {
		t.Fatalf("fleet flags must default to 3 UAVs with auto cells: %+v", o)
	}
	if o.spoofAt != 0 || o.blackbox != "" {
		t.Fatalf("fault and black-box flags must default off: %+v", o)
	}
}

func TestParseArgsFlags(t *testing.T) {
	o, err := parseArgs([]string{
		"-addr", ":0", "-seed", "9", "-uavs", "128", "-cells", "4",
		"-tick-ms", "50", "-spoof", "30", "-blackbox", "box",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":0" || o.seed != 9 || o.uavs != 128 || o.cells != 4 {
		t.Fatalf("fleet flags not applied: %+v", o)
	}
	if o.tickMS != 50 || o.spoofAt != 30 || o.blackbox != "box" {
		t.Fatalf("flags not applied: %+v", o)
	}
}

func TestParseArgsRejects(t *testing.T) {
	for _, args := range [][]string{
		{"stray"},
		{"-no-such-flag"},
		{"-uavs", "0"},
		{"-cells", "-1"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("parseArgs(%v) must fail", args)
		}
	}
}

// TestGCSShardedFleet builds a station large enough to cross the auto
// cell threshold and proves the sharded platform serves the same feed.
func TestGCSShardedFleet(t *testing.T) {
	opts := defaultGCSOptions()
	opts.uavs = 70 // AutoCells(70) = 2: the sharded pipeline engages
	g, err := newGCS(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.p.Close()
	for i := 0; i < 3; i++ {
		if err := g.tick(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(g.p.Status().UAVs); got != 70 {
		t.Fatalf("fleet size = %d, want 70", got)
	}
}

// TestGCSRoutes exercises the merged HTTP surface of the ground
// station: the JSON feed, the UI page, the Prometheus exposition and
// the pprof index, against a live (briefly ticked) mission.
func TestGCSRoutes(t *testing.T) {
	g, err := newGCS(defaultGCSOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer g.p.Close()
	for i := 0; i < 5; i++ {
		if err := g.tick(); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(g.handler())
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	tests := []struct {
		path        string
		wantType    string
		wantContain string
	}{
		{"/", "application/json", `"mission_decision"`},
		{"/events", "application/json", ""},
		{"/ui", "text/html; charset=utf-8", "SESAME multi-UAV GCS"},
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8", "sesame_platform_ticks_total 5"},
		{"/debug/pprof/", "", "profiles"},
		{"/debug/pprof/cmdline", "", ""},
		{"/debug/trace", "application/json", `"phase"`},
	}
	for _, tc := range tests {
		code, body, ctype := get(tc.path)
		if code != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", tc.path, code)
		}
		if tc.wantType != "" && ctype != tc.wantType {
			t.Errorf("GET %s: Content-Type %q, want %q", tc.path, ctype, tc.wantType)
		}
		if tc.wantContain != "" && !strings.Contains(body, tc.wantContain) {
			t.Errorf("GET %s: body does not contain %q:\n%s", tc.path, tc.wantContain, truncate(body))
		}
	}
}

// TestGCSMetricsLockFree proves /metrics is served even while the tick
// mutex is held: the observability path must not block on the
// simulation.
func TestGCSMetricsLockFree(t *testing.T) {
	g, err := newGCS(defaultGCSOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer g.p.Close()

	g.mu.Lock()
	defer g.mu.Unlock()
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		g.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		close(done)
	}()
	<-done
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics under held tick lock: status %d", rec.Code)
	}
}

func truncate(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}

// TestGCSBlackbox flies a short recorded mission and checks /blackbox
// serves the recent incident window while the recording is still open.
func TestGCSBlackbox(t *testing.T) {
	dir := t.TempDir()
	opts := defaultGCSOptions()
	opts.blackbox = dir
	g, err := newGCS(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer g.p.Close()
	defer g.rec.Close()
	for i := 0; i < 60; i++ {
		if err := g.tick(); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	g.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/blackbox", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/blackbox: status %d: %s", rec.Code, truncate(rec.Body.String()))
	}
	var win incidentWindow
	if err := json.Unmarshal(rec.Body.Bytes(), &win); err != nil {
		t.Fatal(err)
	}
	if win.Header.Seed != 1 {
		t.Errorf("window header seed %d, want 1", win.Header.Seed)
	}
	if len(win.Ticks) == 0 || win.Records < 60 {
		t.Errorf("window too small: %d records, %d ticks", win.Records, len(win.Ticks))
	}
	if len(win.SnapshotTicks) == 0 {
		t.Errorf("no checkpoints in a 60-tick window at cadence 50")
	}
}

// TestGCSBlackboxOff proves the endpoint 404s without -blackbox.
func TestGCSBlackboxOff(t *testing.T) {
	g, err := newGCS(defaultGCSOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer g.p.Close()
	rec := httptest.NewRecorder()
	g.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/blackbox", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/blackbox without recorder: status %d, want 404", rec.Code)
	}
}
