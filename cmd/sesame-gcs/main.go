// Command sesame-gcs runs the ground-control-station view of the
// platform: a live simulated SAR mission served over HTTP as JSON —
// the data feed behind the paper's Fig. 4 web GUI.
//
//	sesame-gcs -addr :8080
//	sesame-gcs -uavs 128 -cells 0    # fleet-scale sharded mission
//	curl localhost:8080/              # fleet status snapshot
//	curl localhost:8080/events       # EDDI event history
//	curl localhost:8080/metrics      # Prometheus text exposition
//	curl localhost:8080/debug/pprof/ # pprof index
//	curl localhost:8080/blackbox     # recent incident window (-blackbox)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"sesame"
)

// gcs bundles one running mission with its HTTP surface: the Fig. 4
// JSON feed plus the observability endpoints.
type gcs struct {
	world *sesame.World
	p     *sesame.Platform
	reg   *sesame.ObsvRegistry
	// rec/recDir are the attached black-box recorder (nil when the
	// -blackbox flag is off); /blackbox serves its recent window.
	rec    *sesame.FlightRecorder
	recDir string
	// The platform is not internally synchronized, so one mutex
	// serializes ticks against status/event requests. The metrics
	// registry IS internally synchronized: /metrics and /debug/* are
	// served without the lock and stay responsive mid-tick.
	mu sync.Mutex
}

// gcsOptions carries every flag; parseArgs fills it so tests can build
// stations without touching the process-global flag set.
type gcsOptions struct {
	addr     string
	seed     int64
	uavs     int
	cells    int
	tickMS   int
	spoofAt  float64
	blackbox string
}

// parseArgs parses argv (without the program name) into gcsOptions.
func parseArgs(args []string) (gcsOptions, error) {
	var o gcsOptions
	fs := flag.NewFlagSet("sesame-gcs", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", ":8080", "HTTP listen address")
	fs.Int64Var(&o.seed, "seed", 1, "simulation seed")
	fs.IntVar(&o.uavs, "uavs", 3, "fleet size (UAVs u1..uN)")
	fs.IntVar(&o.cells, "cells", 0, "scheduler cells for the sharded fleet pipeline (0 = auto: one cell per 64 UAVs, 1 = unsharded)")
	fs.IntVar(&o.tickMS, "tick-ms", 200, "wall-clock milliseconds per simulated second")
	fs.Float64Var(&o.spoofAt, "spoof", 0, "inject a spoofing attack on u2 at this mission time (0 = off)")
	fs.StringVar(&o.blackbox, "blackbox", "", "record the mission into this black-box directory and serve /blackbox")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.uavs < 1 {
		return o, fmt.Errorf("-uavs %d: the fleet needs at least one UAV", o.uavs)
	}
	if o.cells < 0 {
		return o, fmt.Errorf("-cells %d: must be >= 0 (0 = auto)", o.cells)
	}
	return o, nil
}

// defaultGCSOptions mirrors a flagless invocation — the seeded demo
// mission the tests build stations from.
func defaultGCSOptions() gcsOptions {
	o, err := parseArgs(nil)
	if err != nil {
		panic(err)
	}
	return o
}

// newGCS builds the seeded demo mission: u1..uN sweeping a 400 m
// square with ten survivors, fully instrumented.
func newGCS(o gcsOptions) (*gcs, error) {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	world := sesame.NewWorld(home, o.seed)
	for i := 1; i <= o.uavs; i++ {
		id := fmt.Sprintf("u%d", i)
		if _, err := world.AddUAV(sesame.UAVConfig{ID: id, Home: home, CruiseSpeedMS: 12}); err != nil {
			return nil, err
		}
	}
	a := sesame.Destination(home, 45, 80)
	b := sesame.Destination(a, 90, 400)
	c := sesame.Destination(b, 0, 400)
	d := sesame.Destination(a, 0, 400)
	area := sesame.Polygon{a, b, c, d}
	scene, err := sesame.NewRandomScene(area, 10, 0.2, world, "scene")
	if err != nil {
		return nil, err
	}
	reg := sesame.NewObsvRegistry()
	reg.SetTrace(sesame.NewObsvTraceRing(4096))
	cfg := sesame.DefaultPlatformConfig()
	cfg.Observability = reg
	cfg.Cells = o.cells
	p, err := sesame.NewPlatform(world, scene, cfg)
	if err != nil {
		return nil, err
	}
	if err := p.StartMission(area); err != nil {
		p.Close()
		return nil, err
	}
	if o.spoofAt > 0 {
		if err := world.ScheduleFault(sesame.GPSSpoofFault(world.Clock.Now()+o.spoofAt, "u2", 135, 3)); err != nil {
			p.Close()
			return nil, err
		}
	}
	g := &gcs{world: world, p: p, reg: reg}
	if o.blackbox != "" {
		rec, err := sesame.NewFlightRecorder(o.blackbox, o.seed, p.ConfigDigest(), 50, sesame.FlightRecorderOptions{})
		if err != nil {
			p.Close()
			return nil, err
		}
		p.SetRecorder(rec)
		g.rec, g.recDir = rec, o.blackbox
	}
	return g, nil
}

// incidentWindow is the /blackbox response: the recording identity
// plus the most recent slice of the recorded stream — what an operator
// inspects right after an incident, while the mission is still flying.
type incidentWindow struct {
	Header        sesame.FlightRecordingHeader `json:"header"`
	Records       int                          `json:"records"`
	SnapshotTicks []uint64                     `json:"snapshot_ticks"`
	Ticks         []json.RawMessage            `json:"ticks"`
	Events        []json.RawMessage            `json:"events"`
	Faults        []json.RawMessage            `json:"faults"`
	Advice        []json.RawMessage            `json:"advice"`
}

// incidentWindowSize bounds each record class served by /blackbox.
const incidentWindowSize = 120

// keepTail appends raw (copied — the reader reuses its buffer) keeping
// only the newest incidentWindowSize entries.
func keepTail(tail []json.RawMessage, raw []byte) []json.RawMessage {
	cp := make(json.RawMessage, len(raw))
	copy(cp, raw)
	if len(tail) == incidentWindowSize {
		tail = append(tail[:0], tail[1:]...)
	}
	return append(tail, cp)
}

// readIncidentWindow decodes the recording's usable prefix and keeps
// the newest records of each class. A torn tail (the segment is being
// appended to while we read) simply ends the window.
func readIncidentWindow(dir string) (*incidentWindow, error) {
	r, err := sesame.OpenFlightRecording(dir)
	if err != nil {
		return nil, err
	}
	win := &incidentWindow{Header: r.Header()}
	for {
		rec, err := r.Next()
		if err != nil {
			break // io.EOF or torn tail: the window is what we have
		}
		win.Records++
		switch rec.Type {
		case sesame.FlightRecordTick:
			win.Ticks = keepTail(win.Ticks, rec.Payload)
		case sesame.FlightRecordEvent:
			win.Events = keepTail(win.Events, rec.Payload)
		case sesame.FlightRecordFault:
			win.Faults = keepTail(win.Faults, rec.Payload)
		case sesame.FlightRecordAdvice:
			win.Advice = keepTail(win.Advice, rec.Payload)
		case sesame.FlightRecordSnapshot:
			if s, err := sesame.DecodeFlightSnapshot(rec.Payload); err == nil {
				win.SnapshotTicks = append(win.SnapshotTicks, s.Tick)
			}
		}
	}
	return win, nil
}

// blackboxHandler serves the recent incident window. The sync runs
// under the tick mutex (the recorder is the platform's); the decode
// reads the segment files without blocking the simulation.
func (g *gcs) blackboxHandler(w http.ResponseWriter, _ *http.Request) {
	if g.rec == nil {
		http.Error(w, "no black box attached (run with -blackbox DIR)", http.StatusNotFound)
		return
	}
	g.mu.Lock()
	err := g.rec.Sync()
	g.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	win, err := readIncidentWindow(g.recDir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(win)
}

// tick advances the simulation by one step under the platform lock.
func (g *gcs) tick() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.p.Tick()
}

// handler merges the platform's JSON feed (served under the tick
// mutex) with the UI page and the lock-free observability routes.
func (g *gcs) handler() http.Handler {
	inner := sesame.PlatformHandler(g.p)
	debug := sesame.ObsvDebugMux(g.reg)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/ui":
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			_, _ = w.Write([]byte(uiPage))
		case r.URL.Path == "/blackbox":
			g.blackboxHandler(w, r)
		case r.URL.Path == "/metrics" || strings.HasPrefix(r.URL.Path, "/debug/"):
			debug.ServeHTTP(w, r)
		default:
			g.mu.Lock()
			defer g.mu.Unlock()
			inner.ServeHTTP(w, r)
		}
	})
}

func main() {
	opts, err := parseArgs(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}

	g, err := newGCS(opts)
	if err != nil {
		fail(err)
	}
	defer g.p.Close()
	if g.rec != nil {
		defer func() { _ = g.rec.Close() }()
	}

	// Drive the simulation in the background; HTTP reads snapshots.
	go func() {
		ticker := time.NewTicker(time.Duration(opts.tickMS) * time.Millisecond)
		defer ticker.Stop()
		for range ticker.C {
			if err := g.tick(); err != nil {
				fmt.Fprintln(os.Stderr, "sesame-gcs: tick:", err)
				return
			}
		}
	}()

	fmt.Printf("sesame-gcs: serving fleet status on %s (/, /events, /ui, /metrics, /debug/pprof/%s)\n",
		opts.addr, map[bool]string{true: ", /blackbox"}[g.rec != nil])
	if err := http.ListenAndServe(opts.addr, g.handler()); err != nil {
		fail(err)
	}
}

// uiPage is the minimal Fig. 4 web GUI: fleet tracks on a canvas plus
// the per-UAV status boxes and the EDDI event feed, polling the JSON
// endpoints once per second.
const uiPage = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>SESAME multi-UAV GCS</title>
<style>
 body { font-family: monospace; background: #10141a; color: #dde; margin: 1em; }
 h1 { font-size: 1.1em; }
 #layout { display: flex; gap: 1em; }
 canvas { background: #1a222e; border: 1px solid #334; }
 .uav { border: 1px solid #345; padding: .4em .6em; margin-bottom: .5em; }
 .uav.compromised { border-color: #e33; }
 #events { max-height: 220px; overflow-y: auto; font-size: .85em; margin-top: 1em; }
 .sev1 { color: #f66; } .sevmid { color: #fc6; } .sevlow { color: #9c9; }
</style></head><body>
<h1>SESAME multi-UAV platform &mdash; live fleet (Fig. 4 view)</h1>
<div id="layout">
 <canvas id="map" width="560" height="560"></canvas>
 <div id="panel" style="min-width:320px"></div>
</div>
<div id="events"></div>
<script>
const tracks = {};
const colors = ["#e74c3c", "#e67e22", "#2ecc71", "#3498db", "#9b59b6"];
let colorOf = {};
function color(id) {
  if (!(id in colorOf)) colorOf[id] = colors[Object.keys(colorOf).length % colors.length];
  return colorOf[id];
}
async function refresh() {
  const s = await (await fetch("/")).json();
  const panel = document.getElementById("panel");
  panel.innerHTML = "<div>t=" + s.time.toFixed(0) + "s &mdash; " + s.mission_decision + "</div>";
  for (const u of s.uavs) {
    (tracks[u.id] = tracks[u.id] || []).push([u.position.Lng, u.position.Lat]);
    if (tracks[u.id].length > 2000) tracks[u.id].shift();
    const div = document.createElement("div");
    div.className = "uav" + (u.compromised ? " compromised" : "");
    div.innerHTML = "<b style='color:" + color(u.id) + "'>" + u.id + "</b> " + u.mode +
      "<br>batt " + u.battery_pct.toFixed(1) + "% | PoF " + u.pof.toFixed(3) +
      " | rel " + u.reliability + " | wps " + u.waypoints_remaining +
      (u.compromised ? "<br><b>COMPROMISED</b>" : "") +
      (u.collaborative_landing ? "<br>collaborative landing" : "");
    panel.appendChild(div);
  }
  draw(s);
  const evs = await (await fetch("/events")).json();
  const box = document.getElementById("events");
  box.innerHTML = (evs || []).slice(-40).reverse().map(e => {
    const cls = e.severity >= 0.9 ? "sev1" : (e.severity >= 0.5 ? "sevmid" : "sevlow");
    return "<div class='" + cls + "'>[" + e.time.toFixed(0) + "s] " + e.kind + " " + e.uav + ": " + e.summary + "</div>";
  }).join("");
}
function draw(s) {
  const c = document.getElementById("map"), g = c.getContext("2d");
  g.fillStyle = "#1a222e"; g.fillRect(0, 0, c.width, c.height);
  let min = [Infinity, Infinity], max = [-Infinity, -Infinity];
  for (const id in tracks) for (const p of tracks[id]) {
    min[0] = Math.min(min[0], p[0]); min[1] = Math.min(min[1], p[1]);
    max[0] = Math.max(max[0], p[0]); max[1] = Math.max(max[1], p[1]);
  }
  if (min[0] === Infinity) return;
  const pad = 30;
  const sx = x => pad + (x - min[0]) / Math.max(max[0] - min[0], 1e-9) * (c.width - 2 * pad);
  const sy = y => c.height - pad - (y - min[1]) / Math.max(max[1] - min[1], 1e-9) * (c.height - 2 * pad);
  for (const id in tracks) {
    g.strokeStyle = color(id); g.beginPath();
    tracks[id].forEach((p, i) => i ? g.lineTo(sx(p[0]), sy(p[1])) : g.moveTo(sx(p[0]), sy(p[1])));
    g.stroke();
    const last = tracks[id][tracks[id].length - 1];
    g.fillStyle = color(id);
    g.beginPath(); g.arc(sx(last[0]), sy(last[1]), 5, 0, 7); g.fill();
  }
}
setInterval(refresh, 1000); refresh();
</script></body></html>`

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sesame-gcs:", err)
	os.Exit(1)
}
