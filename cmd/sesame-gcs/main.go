// Command sesame-gcs runs the ground-control-station view of the
// platform: a live simulated SAR mission served over HTTP as JSON —
// the data feed behind the paper's Fig. 4 web GUI.
//
//	sesame-gcs -addr :8080
//	sesame-gcs -uavs 128 -cells 0    # fleet-scale sharded mission
//	curl localhost:8080/              # fleet status snapshot
//	curl localhost:8080/events       # EDDI event history
//	curl localhost:8080/metrics      # Prometheus text exposition
//	curl localhost:8080/debug/pprof/ # pprof index
//	curl localhost:8080/blackbox     # recent incident window (-blackbox)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"sesame"
)

// gcs bundles one running mission with its HTTP surface: the Fig. 4
// JSON feed plus the observability endpoints.
type gcs struct {
	world *sesame.World
	p     *sesame.Platform
	reg   *sesame.ObsvRegistry
	// rec/recDir are the attached black-box recorder (nil when the
	// -blackbox flag is off); /blackbox serves its recent window.
	rec    *sesame.FlightRecorder
	recDir string
	// The platform is not internally synchronized, so one mutex
	// serializes ticks against anything reading platform state. The
	// JSON feed itself is served from the copy-on-write snapshot below,
	// so status/event requests never take this lock; the metrics
	// registry is internally synchronized and lock-free too.
	mu sync.Mutex
	// feed is the latest published view of the mission: the rendered
	// status document plus the EDDI history, swapped in atomically
	// after every tick. Readers load the pointer and never block.
	feed atomic.Pointer[feedView]
}

// feedView is one copy-on-write publication of the mission feed.
type feedView struct {
	status []byte // rendered "/" document, trailing newline included
	events []feedEvent
}

// feedEvent mirrors the EDDI event wire format of the "/events" route.
type feedEvent struct {
	Kind     string  `json:"kind"`
	UAV      string  `json:"uav"`
	Time     float64 `json:"time"`
	Severity float64 `json:"severity"`
	Summary  string  `json:"summary"`
}

// gcsOptions carries every flag; parseArgs fills it so tests can build
// stations without touching the process-global flag set.
type gcsOptions struct {
	addr     string
	seed     int64
	uavs     int
	cells    int
	tickMS   int
	spoofAt  float64
	blackbox string
	// Multi-mission host mode (-multi): serve a mission registry
	// instead of one hardwired demo mission.
	multi       bool
	parkDir     string
	maxLive     int
	maxMissions int
	tickBudget  int
	idleRounds  int
}

// parseArgs parses argv (without the program name) into gcsOptions.
func parseArgs(args []string) (gcsOptions, error) {
	var o gcsOptions
	fs := flag.NewFlagSet("sesame-gcs", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", ":8080", "HTTP listen address")
	fs.Int64Var(&o.seed, "seed", 1, "simulation seed")
	fs.IntVar(&o.uavs, "uavs", 3, "fleet size (UAVs u1..uN)")
	fs.IntVar(&o.cells, "cells", 0, "scheduler cells for the sharded fleet pipeline (0 = auto: one cell per 64 UAVs, 1 = unsharded)")
	fs.IntVar(&o.tickMS, "tick-ms", 200, "wall-clock milliseconds per simulated second")
	fs.Float64Var(&o.spoofAt, "spoof", 0, "inject a spoofing attack on u2 at this mission time (0 = off)")
	fs.StringVar(&o.blackbox, "blackbox", "", "record the mission into this black-box directory and serve /blackbox")
	fs.BoolVar(&o.multi, "multi", false, "serve a multi-mission host (POST /missions) instead of the single demo mission")
	fs.StringVar(&o.parkDir, "park-dir", "", "directory for parked mission checkpoints (-multi; empty = temporary)")
	fs.IntVar(&o.maxLive, "max-live", 64, "missions kept in memory at once (-multi)")
	fs.IntVar(&o.maxMissions, "max-missions", 4096, "registry capacity (-multi)")
	fs.IntVar(&o.tickBudget, "tick-budget", 1, "simulation ticks per mission per round (-multi)")
	fs.IntVar(&o.idleRounds, "idle-rounds", 0, "park unwatched missions after this many idle rounds (-multi; 0 = never)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.uavs < 1 {
		return o, fmt.Errorf("-uavs %d: the fleet needs at least one UAV", o.uavs)
	}
	if o.cells < 0 {
		return o, fmt.Errorf("-cells %d: must be >= 0 (0 = auto)", o.cells)
	}
	if o.multi && (o.spoofAt > 0 || o.blackbox != "") {
		return o, fmt.Errorf("-multi hosts declarative missions; -spoof and -blackbox only apply to the single demo mission")
	}
	if o.multi && (o.maxLive < 1 || o.maxMissions < 1 || o.tickBudget < 1 || o.idleRounds < 0) {
		return o, fmt.Errorf("-max-live, -max-missions and -tick-budget must be >= 1, -idle-rounds >= 0")
	}
	return o, nil
}

// defaultGCSOptions mirrors a flagless invocation — the seeded demo
// mission the tests build stations from.
func defaultGCSOptions() gcsOptions {
	o, err := parseArgs(nil)
	if err != nil {
		panic(err)
	}
	return o
}

// newGCS builds the seeded demo mission: u1..uN sweeping a 400 m
// square with ten survivors, fully instrumented.
func newGCS(o gcsOptions) (*gcs, error) {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	world := sesame.NewWorld(home, o.seed)
	for i := 1; i <= o.uavs; i++ {
		id := fmt.Sprintf("u%d", i)
		if _, err := world.AddUAV(sesame.UAVConfig{ID: id, Home: home, CruiseSpeedMS: 12}); err != nil {
			return nil, err
		}
	}
	a := sesame.Destination(home, 45, 80)
	b := sesame.Destination(a, 90, 400)
	c := sesame.Destination(b, 0, 400)
	d := sesame.Destination(a, 0, 400)
	area := sesame.Polygon{a, b, c, d}
	scene, err := sesame.NewRandomScene(area, 10, 0.2, world, "scene")
	if err != nil {
		return nil, err
	}
	reg := sesame.NewObsvRegistry()
	reg.SetTrace(sesame.NewObsvTraceRing(4096))
	cfg := sesame.DefaultPlatformConfig()
	cfg.Observability = reg
	cfg.Cells = o.cells
	p, err := sesame.NewPlatform(world, scene, cfg)
	if err != nil {
		return nil, err
	}
	if err := p.StartMission(area); err != nil {
		p.Close()
		return nil, err
	}
	if o.spoofAt > 0 {
		if err := world.ScheduleFault(sesame.GPSSpoofFault(world.Clock.Now()+o.spoofAt, "u2", 135, 3)); err != nil {
			p.Close()
			return nil, err
		}
	}
	g := &gcs{world: world, p: p, reg: reg}
	if o.blackbox != "" {
		rec, err := sesame.NewFlightRecorder(o.blackbox, o.seed, p.ConfigDigest(), 50, sesame.FlightRecorderOptions{})
		if err != nil {
			p.Close()
			return nil, err
		}
		p.SetRecorder(rec)
		g.rec, g.recDir = rec, o.blackbox
	}
	if err := g.publishFeed(); err != nil {
		p.Close()
		return nil, err
	}
	return g, nil
}

// publishFeed renders the current platform state into a fresh feedView
// and swaps it in. Callers must hold g.mu (or own the platform
// exclusively, as newGCS does).
func (g *gcs) publishFeed() error {
	status, err := json.Marshal(g.p.Status())
	if err != nil {
		return err
	}
	view := &feedView{status: append(status, '\n')}
	for _, ev := range g.p.Coordinator.History("") {
		view.events = append(view.events, feedEvent{
			Kind: ev.Kind.String(), UAV: ev.UAV, Time: ev.Time,
			Severity: ev.Severity, Summary: ev.Summary,
		})
	}
	g.feed.Store(view)
	return nil
}

// incidentWindow is the /blackbox response: the recording identity
// plus the most recent slice of the recorded stream — what an operator
// inspects right after an incident, while the mission is still flying.
type incidentWindow struct {
	Header        sesame.FlightRecordingHeader `json:"header"`
	Records       int                          `json:"records"`
	SnapshotTicks []uint64                     `json:"snapshot_ticks"`
	Ticks         []json.RawMessage            `json:"ticks"`
	Events        []json.RawMessage            `json:"events"`
	Faults        []json.RawMessage            `json:"faults"`
	Advice        []json.RawMessage            `json:"advice"`
}

// incidentWindowSize bounds each record class served by /blackbox.
const incidentWindowSize = 120

// keepTail appends raw (copied — the reader reuses its buffer) keeping
// only the newest incidentWindowSize entries.
func keepTail(tail []json.RawMessage, raw []byte) []json.RawMessage {
	cp := make(json.RawMessage, len(raw))
	copy(cp, raw)
	if len(tail) == incidentWindowSize {
		tail = append(tail[:0], tail[1:]...)
	}
	return append(tail, cp)
}

// readIncidentWindow decodes the recording's usable prefix and keeps
// the newest records of each class. A torn tail (the segment is being
// appended to while we read) simply ends the window.
func readIncidentWindow(dir string) (*incidentWindow, error) {
	r, err := sesame.OpenFlightRecording(dir)
	if err != nil {
		return nil, err
	}
	win := &incidentWindow{Header: r.Header()}
	for {
		rec, err := r.Next()
		if err != nil {
			break // io.EOF or torn tail: the window is what we have
		}
		win.Records++
		switch rec.Type {
		case sesame.FlightRecordTick:
			win.Ticks = keepTail(win.Ticks, rec.Payload)
		case sesame.FlightRecordEvent:
			win.Events = keepTail(win.Events, rec.Payload)
		case sesame.FlightRecordFault:
			win.Faults = keepTail(win.Faults, rec.Payload)
		case sesame.FlightRecordAdvice:
			win.Advice = keepTail(win.Advice, rec.Payload)
		case sesame.FlightRecordSnapshot:
			if s, err := sesame.DecodeFlightSnapshot(rec.Payload); err == nil {
				win.SnapshotTicks = append(win.SnapshotTicks, s.Tick)
			}
		}
	}
	return win, nil
}

// blackboxHandler serves the recent incident window. The sync runs
// under the tick mutex (the recorder is the platform's); the decode
// reads the segment files without blocking the simulation.
func (g *gcs) blackboxHandler(w http.ResponseWriter, _ *http.Request) {
	if g.rec == nil {
		http.Error(w, "no black box attached (run with -blackbox DIR)", http.StatusNotFound)
		return
	}
	g.mu.Lock()
	err := g.rec.Sync()
	g.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	win, err := readIncidentWindow(g.recDir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(win)
}

// tick advances the simulation by one step under the platform lock and
// publishes a fresh copy-on-write feed snapshot.
func (g *gcs) tick() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.p.Tick(); err != nil {
		return err
	}
	return g.publishFeed()
}

// serveStatus writes the published status document — the same bytes
// the platform's own handler would encode, without touching the tick
// mutex.
func (g *gcs) serveStatus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(g.feed.Load().status)
}

// serveEvents writes the EDDI history from the published feed,
// filtered by the optional ?uav= parameter. An empty history encodes
// as null, exactly like the platform handler's nil slice did.
func (g *gcs) serveEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	uav := r.URL.Query().Get("uav")
	var out []feedEvent
	for _, ev := range g.feed.Load().events {
		if uav == "" || ev.UAV == uav {
			out = append(out, ev)
		}
	}
	_ = json.NewEncoder(w).Encode(out)
}

// handler merges the mission's JSON feed (served lock-free from the
// copy-on-write snapshot) with the UI page and the observability
// routes.
func (g *gcs) handler() http.Handler {
	debug := sesame.ObsvDebugMux(g.reg)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/ui":
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			_, _ = w.Write([]byte(uiPage))
		case r.URL.Path == "/blackbox":
			g.blackboxHandler(w, r)
		case r.URL.Path == "/metrics" || strings.HasPrefix(r.URL.Path, "/debug/"):
			debug.ServeHTTP(w, r)
		case r.URL.Path == "/events":
			g.serveEvents(w, r)
		default:
			g.serveStatus(w)
		}
	})
}

func main() {
	opts, err := parseArgs(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := serve(opts, os.Stdout, stop); err != nil {
		fail(err)
	}
}

// shutdownTimeout bounds how long a stopping station waits for open
// HTTP connections (including SSE streams) to drain.
const shutdownTimeout = 10 * time.Second

// serve binds the listen address and runs the station until the
// process is told to stop. A signal on stop triggers a graceful
// shutdown — simulation halted, state flushed to disk, connections
// drained — and serve returns nil so the process exits 0.
func serve(opts gcsOptions, out io.Writer, stop <-chan os.Signal) error {
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	if opts.multi {
		return serveMulti(opts, ln, out, stop)
	}
	return serveSingle(opts, ln, out, stop)
}

// serveSingle runs the classic one-mission station: a background
// goroutine ticks the simulation, HTTP serves the published feed. On
// stop the ticker halts, the black box (if any) is flushed and closed,
// and open connections drain.
func serveSingle(opts gcsOptions, ln net.Listener, out io.Writer, stop <-chan os.Signal) error {
	g, err := newGCS(opts)
	if err != nil {
		ln.Close()
		return err
	}
	defer g.p.Close()

	tickStop := make(chan struct{})
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		ticker := time.NewTicker(time.Duration(opts.tickMS) * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-tickStop:
				return
			case <-ticker.C:
				if err := g.tick(); err != nil {
					fmt.Fprintln(os.Stderr, "sesame-gcs: tick:", err)
					return
				}
			}
		}
	}()

	srv := &http.Server{Handler: g.handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(out, "sesame-gcs: serving fleet status on %s (/, /events, /ui, /metrics, /debug/pprof/%s)\n",
		ln.Addr(), map[bool]string{true: ", /blackbox"}[g.rec != nil])

	select {
	case err := <-errCh:
		close(tickStop)
		<-tickDone
		return err
	case <-stop:
	}
	close(tickStop)
	<-tickDone
	if g.rec != nil {
		if err := g.rec.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sesame-gcs: black box close:", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	<-errCh // http.ErrServerClosed
	fmt.Fprintln(out, "sesame-gcs: stopped")
	return nil
}

// serveMulti runs the multi-tenant mission host: the registry API plus
// the observability routes, with a background round loop driving every
// live mission on the shared worker pool. On stop the round loop
// halts, every live mission is checkpointed to the park directory, SSE
// streams close, and connections drain — a later start with the same
// -park-dir recovers the fleet.
func serveMulti(opts gcsOptions, ln net.Listener, out io.Writer, stop <-chan os.Signal) error {
	reg := sesame.NewObsvRegistry()
	host, err := sesame.NewMissionHost(sesame.MissionHostConfig{
		ParkDir:       opts.parkDir,
		MaxLive:       opts.maxLive,
		MaxMissions:   opts.maxMissions,
		TickBudget:    opts.tickBudget,
		IdleRounds:    opts.idleRounds,
		Observability: reg,
	})
	if err != nil {
		ln.Close()
		return err
	}
	defer host.Close()

	debug := sesame.ObsvDebugMux(reg)
	api := host.Handler()
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" || strings.HasPrefix(r.URL.Path, "/debug/") {
			debug.ServeHTTP(w, r)
			return
		}
		api.ServeHTTP(w, r)
	})

	roundStop := make(chan struct{})
	roundDone := make(chan struct{})
	go func() {
		defer close(roundDone)
		ticker := time.NewTicker(time.Duration(opts.tickMS) * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-roundStop:
				return
			case <-ticker.C:
				host.Round()
			}
		}
	}()

	srv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(out, "sesame-gcs: hosting missions on %s (/missions, /metrics, /debug/pprof/)\n", ln.Addr())

	select {
	case err := <-errCh:
		close(roundStop)
		<-roundDone
		return err
	case <-stop:
	}
	close(roundStop)
	<-roundDone
	// Park every live mission first: this also closes all subscriber
	// channels, so blocked SSE handlers return and Shutdown can drain.
	if err := host.Shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "sesame-gcs: mission host shutdown:", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	<-errCh // http.ErrServerClosed
	fmt.Fprintln(out, "sesame-gcs: stopped")
	return nil
}

// uiPage is the minimal Fig. 4 web GUI: fleet tracks on a canvas plus
// the per-UAV status boxes and the EDDI event feed, polling the JSON
// endpoints once per second.
const uiPage = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>SESAME multi-UAV GCS</title>
<style>
 body { font-family: monospace; background: #10141a; color: #dde; margin: 1em; }
 h1 { font-size: 1.1em; }
 #layout { display: flex; gap: 1em; }
 canvas { background: #1a222e; border: 1px solid #334; }
 .uav { border: 1px solid #345; padding: .4em .6em; margin-bottom: .5em; }
 .uav.compromised { border-color: #e33; }
 #events { max-height: 220px; overflow-y: auto; font-size: .85em; margin-top: 1em; }
 .sev1 { color: #f66; } .sevmid { color: #fc6; } .sevlow { color: #9c9; }
</style></head><body>
<h1>SESAME multi-UAV platform &mdash; live fleet (Fig. 4 view)</h1>
<div id="layout">
 <canvas id="map" width="560" height="560"></canvas>
 <div id="panel" style="min-width:320px"></div>
</div>
<div id="events"></div>
<script>
const tracks = {};
const colors = ["#e74c3c", "#e67e22", "#2ecc71", "#3498db", "#9b59b6"];
let colorOf = {};
function color(id) {
  if (!(id in colorOf)) colorOf[id] = colors[Object.keys(colorOf).length % colors.length];
  return colorOf[id];
}
async function refresh() {
  const s = await (await fetch("/")).json();
  const panel = document.getElementById("panel");
  panel.innerHTML = "<div>t=" + s.time.toFixed(0) + "s &mdash; " + s.mission_decision + "</div>";
  for (const u of s.uavs) {
    (tracks[u.id] = tracks[u.id] || []).push([u.position.Lng, u.position.Lat]);
    if (tracks[u.id].length > 2000) tracks[u.id].shift();
    const div = document.createElement("div");
    div.className = "uav" + (u.compromised ? " compromised" : "");
    div.innerHTML = "<b style='color:" + color(u.id) + "'>" + u.id + "</b> " + u.mode +
      "<br>batt " + u.battery_pct.toFixed(1) + "% | PoF " + u.pof.toFixed(3) +
      " | rel " + u.reliability + " | wps " + u.waypoints_remaining +
      (u.compromised ? "<br><b>COMPROMISED</b>" : "") +
      (u.collaborative_landing ? "<br>collaborative landing" : "");
    panel.appendChild(div);
  }
  draw(s);
  const evs = await (await fetch("/events")).json();
  const box = document.getElementById("events");
  box.innerHTML = (evs || []).slice(-40).reverse().map(e => {
    const cls = e.severity >= 0.9 ? "sev1" : (e.severity >= 0.5 ? "sevmid" : "sevlow");
    return "<div class='" + cls + "'>[" + e.time.toFixed(0) + "s] " + e.kind + " " + e.uav + ": " + e.summary + "</div>";
  }).join("");
}
function draw(s) {
  const c = document.getElementById("map"), g = c.getContext("2d");
  g.fillStyle = "#1a222e"; g.fillRect(0, 0, c.width, c.height);
  let min = [Infinity, Infinity], max = [-Infinity, -Infinity];
  for (const id in tracks) for (const p of tracks[id]) {
    min[0] = Math.min(min[0], p[0]); min[1] = Math.min(min[1], p[1]);
    max[0] = Math.max(max[0], p[0]); max[1] = Math.max(max[1], p[1]);
  }
  if (min[0] === Infinity) return;
  const pad = 30;
  const sx = x => pad + (x - min[0]) / Math.max(max[0] - min[0], 1e-9) * (c.width - 2 * pad);
  const sy = y => c.height - pad - (y - min[1]) / Math.max(max[1] - min[1], 1e-9) * (c.height - 2 * pad);
  for (const id in tracks) {
    g.strokeStyle = color(id); g.beginPath();
    tracks[id].forEach((p, i) => i ? g.lineTo(sx(p[0]), sy(p[1])) : g.moveTo(sx(p[0]), sy(p[1])));
    g.stroke();
    const last = tracks[id][tracks[id].length - 1];
    g.fillStyle = color(id);
    g.beginPath(); g.arc(sx(last[0]), sy(last[1]), 5, 0, 7); g.fill();
  }
}
setInterval(refresh, 1000); refresh();
</script></body></html>`

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sesame-gcs:", err)
	os.Exit(1)
}
