// Command sesame-campaign runs a Monte Carlo campaign: a declarative
// sweep spec (seed range × link/fault/fleet parameter grid) expanded
// into independent seeded scenario replicas, executed on a bounded
// worker pool and streamed into per-run CSV/JSONL plus aggregated
// risk-curve artefacts. A killed sweep resumes from its journal and
// produces byte-identical outputs.
//
// Usage:
//
//	sesame-campaign -out sweep/                      # built-in demo grid
//	sesame-campaign -spec spec.json -out sweep/      # your grid
//	sesame-campaign -spec spec.json -out sweep/ -resume   # continue a killed sweep
//	sesame-campaign -workers 8                       # worker pool size (0 = all cores)
//	sesame-campaign -max-runs 100                    # stop early (resume later)
//	sesame-campaign -print-spec                      # dump the effective spec and exit
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"sesame/internal/campaign"
	"sesame/internal/chaos"
	"sesame/internal/linksim"
	"sesame/internal/simclock"
)

// options carries every flag; parseArgs fills it so tests can drive
// run without touching the process-global flag set.
type options struct {
	spec       string
	out        string
	resume     bool
	workers    int
	maxRuns    int
	seed       int64
	printSpec  bool
	every      int
	chaosPath  string
	runRetries int
}

// parseArgs parses argv (without the program name) into options.
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("sesame-campaign", flag.ContinueOnError)
	fs.StringVar(&o.spec, "spec", "", "campaign spec JSON file (empty = built-in demo grid)")
	fs.StringVar(&o.out, "out", "", "campaign output directory (required unless -print-spec)")
	fs.BoolVar(&o.resume, "resume", false, "resume a killed sweep from -out's journal")
	fs.IntVar(&o.workers, "workers", 0, "worker pool size (0 = one per core)")
	fs.IntVar(&o.maxRuns, "max-runs", 0, "execute at most this many new runs, then stop (0 = no limit)")
	fs.Int64Var(&o.seed, "seed", 1, "first seed of the demo grid (ignored with -spec)")
	fs.BoolVar(&o.printSpec, "print-spec", false, "print the normalized spec as JSON and exit")
	fs.IntVar(&o.every, "progress-every", 100, "print a progress line every N completed runs (0 = quiet)")
	fs.StringVar(&o.chaosPath, "chaos", "", "inject worker failures from this chaos plan JSON (its workers rules; pass the same plan when resuming)")
	fs.IntVar(&o.runRetries, "run-retries", 0, "re-execute a failing run up to N extra times, then quarantine it as status=failed instead of aborting (0 = fail fast)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.out == "" && !o.printSpec {
		return o, errors.New("-out is required (where the campaign writes its journal and results)")
	}
	if o.workers < 0 {
		return o, fmt.Errorf("-workers %d: must be >= 0 (0 = one per core)", o.workers)
	}
	if o.maxRuns < 0 {
		return o, fmt.Errorf("-max-runs %d: must be >= 0 (0 = no limit)", o.maxRuns)
	}
	if o.runRetries < 0 {
		return o, fmt.Errorf("-run-retries %d: must be >= 0 (0 = fail fast)", o.runRetries)
	}
	return o, nil
}

func main() {
	opts, err := parseArgs(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sesame-campaign:", err)
		os.Exit(1)
	}
}

// demoSpec is the built-in grid used when no -spec file is given:
// 4 seeds × 3 link conditions × 3 fault scenarios = 36 runs.
func demoSpec(seed int64) campaign.Spec {
	return campaign.Spec{
		Name:      "demo",
		SeedFrom:  seed,
		SeedCount: 4,
		HorizonS:  900,
		Links: []campaign.LinkVariant{
			{Name: "nominal"},
			{Name: "lossy-10", Profile: linksim.Profile{DropProb: 0.10}},
			{Name: "blackout-60s", OutageStartS: 120, OutageDurS: 60},
		},
		Faults: []campaign.FaultVariant{
			{Name: "none"},
			{Name: "battery-60", BatteryAtS: 60},
			{Name: "spoof-30", SpoofAtS: 30},
		},
	}
}

// loadSpec returns the sweep spec: the demo grid, or the -spec file.
func loadSpec(opts options) (campaign.Spec, error) {
	if opts.spec == "" {
		return demoSpec(opts.seed), nil
	}
	var spec campaign.Spec
	data, err := os.ReadFile(opts.spec)
	if err != nil {
		return spec, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("%s: %w", opts.spec, err)
	}
	return spec, nil
}

// run executes one invocation.
func run(opts options, out io.Writer) error {
	spec, err := loadSpec(opts)
	if err != nil {
		return err
	}
	if opts.printSpec {
		spec.Normalize()
		if err := spec.Validate(); err != nil {
			return err
		}
		data, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", data)
		return nil
	}

	done, failed := 0, 0
	engOpts := campaign.Options{
		OutDir:     opts.out,
		Workers:    opts.workers,
		Resume:     opts.resume,
		MaxRuns:    opts.maxRuns,
		RunRetries: opts.runRetries,
	}
	if opts.chaosPath != "" {
		data, err := os.ReadFile(opts.chaosPath)
		if err != nil {
			return err
		}
		plan, err := chaos.LoadPlan(data)
		if err != nil {
			return err
		}
		// Worker-failure decisions depend only on (plan seed, run index,
		// attempt), so the clock seed is irrelevant; the layer just needs
		// one to exist.
		layer, err := chaos.New(simclock.New(0), plan)
		if err != nil {
			return err
		}
		engOpts.RunFaultHook = layer.WorkerFailure
		fmt.Fprintf(out, "chaos armed from %s (plan seed %d, %d worker rules)\n",
			opts.chaosPath, plan.Seed, len(plan.Workers))
	}
	var total int
	engOpts.OnResult = func(res campaign.Result) {
		done++
		if res.Failed() {
			failed++
		}
		if opts.every > 0 && done%opts.every == 0 {
			fmt.Fprintf(out, "  %d/%d runs\n", done, total)
		}
	}
	eng, err := campaign.New(spec, engOpts)
	if err != nil {
		return err
	}
	total = eng.Total()
	fmt.Fprintf(out, "campaign %q: %d runs (spec %s), %d workers -> %s\n",
		spec.Name, total, spec.Digest()[:12], eng.Workers(), opts.out)

	sum, err := eng.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d/%d runs done in %.1fs (%.0f runs/s): %d executed, %d replayed from journal\n",
		sum.Emitted, sum.Total, sum.Elapsed.Seconds(), sum.RunsPerSec, sum.Executed, sum.Replayed)
	if failed > 0 {
		fmt.Fprintf(out, "%d runs quarantined (status=failed in %s/%s after exhausting %d retries)\n",
			failed, opts.out, campaign.RunsCSVName, opts.runRetries)
	}
	if !sum.Complete {
		fmt.Fprintf(out, "sweep stopped early; continue with: sesame-campaign -spec ... -out %s -resume\n", opts.out)
		return nil
	}
	fmt.Fprintf(out, "results: %s/%s, %s/%s; aggregates: %s/%s, %s/%s, %s/%s\n",
		opts.out, campaign.RunsCSVName, opts.out, campaign.RunsJSONLName,
		opts.out, campaign.CurvesCSVName, opts.out, campaign.ECDFCSVName,
		opts.out, campaign.AggregatesName)
	return nil
}
