package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sesame/internal/campaign"
)

func TestParseArgs(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"no out", []string{}, "-out is required"},
		{"positional", []string{"-out", "d", "stray"}, "unexpected arguments"},
		{"bad workers", []string{"-out", "d", "-workers", "-1"}, "must be >= 0"},
		{"bad max-runs", []string{"-out", "d", "-max-runs", "-3"}, "must be >= 0"},
		{"print-spec without out", []string{"-print-spec"}, ""},
		{"ok", []string{"-spec", "s.json", "-out", "d", "-resume", "-workers", "2"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseArgs(tc.args)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseArgs(%v): %v", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseArgs(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestPrintSpecIsValidSpec(t *testing.T) {
	var out bytes.Buffer
	opts, err := parseArgs([]string{"-print-spec"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(opts, &out); err != nil {
		t.Fatal(err)
	}
	// The dumped spec must round-trip through the strict -spec loader.
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	opts2, err := parseArgs([]string{"-spec", path, "-print-spec"})
	if err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	if err := run(opts2, &out2); err != nil {
		t.Fatalf("re-loading dumped spec: %v", err)
	}
	if out.String() != out2.String() {
		t.Fatal("spec dump is not a fixed point of load+dump")
	}
}

func TestSpecLoadRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(`{"name":"x","sed_count":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	opts, err := parseArgs([]string{"-spec", path, "-print-spec"})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(opts, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("misspelled spec field not rejected: %v", err)
	}
}

// TestKillResumeRoundTrip drives the CLI the way an operator would:
// a sweep cut short by -max-runs, then -resume, must produce outputs
// byte-identical to an uninterrupted sweep of the same spec file.
func TestKillResumeRoundTrip(t *testing.T) {
	specJSON := `{
  "name": "cli-test",
  "seed_from": 1,
  "seed_count": 2,
  "horizon_s": 240,
  "area_side_m": 200,
  "links": [{"name": "nominal"}, {"name": "lossy", "profile": {"drop_prob": 0.1}}],
  "faults": [{"name": "spoof-30", "spoof_at_s": 30}]
}`
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	ref := filepath.Join(dir, "ref")
	cut := filepath.Join(dir, "cut")

	mustRun := func(args ...string) string {
		t.Helper()
		opts, err := parseArgs(args)
		if err != nil {
			t.Fatalf("parseArgs(%v): %v", args, err)
		}
		var out bytes.Buffer
		if err := run(opts, &out); err != nil {
			t.Fatalf("run(%v): %v\n%s", args, err, out.String())
		}
		return out.String()
	}

	mustRun("-spec", spec, "-out", ref, "-workers", "2", "-progress-every", "0")
	cutOut := mustRun("-spec", spec, "-out", cut, "-workers", "2", "-max-runs", "1", "-progress-every", "0")
	if !strings.Contains(cutOut, "stopped early") {
		t.Fatalf("cut sweep did not report early stop:\n%s", cutOut)
	}
	mustRun("-spec", spec, "-out", cut, "-workers", "2", "-resume", "-progress-every", "0")

	// Resuming without -resume must refuse rather than overwrite.
	opts, err := parseArgs([]string{"-spec", spec, "-out", cut})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(opts, &bytes.Buffer{}); err == nil {
		t.Fatal("re-running into a journaled directory without -resume did not fail")
	}

	for _, name := range []string{
		campaign.RunsCSVName, campaign.RunsJSONLName,
		campaign.CurvesCSVName, campaign.ECDFCSVName,
		campaign.AggregatesName, campaign.ManifestName,
	} {
		a, err := os.ReadFile(filepath.Join(ref, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(cut, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between uninterrupted and resumed sweep", name)
		}
	}
}

// TestChaosKillResumeRoundTrip drives -chaos + -run-retries through
// the CLI: one run quarantined after exhausting its retries, one
// healed by a retry — and a sweep cut by -max-runs then resumed (same
// plan passed again) must produce outputs byte-identical to the
// uninterrupted chaos sweep.
func TestChaosKillResumeRoundTrip(t *testing.T) {
	specJSON := `{
  "name": "chaos-cli",
  "seed_from": 1,
  "seed_count": 2,
  "horizon_s": 240,
  "area_side_m": 200,
  "links": [{"name": "nominal"}, {"name": "lossy", "profile": {"drop_prob": 0.1}}],
  "faults": [{"name": "spoof-30", "spoof_at_s": 30}]
}`
	planJSON := `{
  "name": "worker-faults",
  "seed": 13,
  "workers": [
    {"indices": [1], "attempts": 3},
    {"indices": [2], "attempts": 1}
  ]
}`
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	plan := filepath.Join(dir, "plan.json")
	for path, content := range map[string]string{spec: specJSON, plan: planJSON} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ref := filepath.Join(dir, "ref")
	cut := filepath.Join(dir, "cut")

	mustRun := func(args ...string) string {
		t.Helper()
		opts, err := parseArgs(args)
		if err != nil {
			t.Fatalf("parseArgs(%v): %v", args, err)
		}
		var out bytes.Buffer
		if err := run(opts, &out); err != nil {
			t.Fatalf("run(%v): %v\n%s", args, err, out.String())
		}
		return out.String()
	}

	chaosArgs := []string{"-spec", spec, "-chaos", plan, "-run-retries", "2", "-workers", "2", "-progress-every", "0"}
	refOut := mustRun(append(chaosArgs, "-out", ref)...)
	if !strings.Contains(refOut, "chaos armed from") {
		t.Fatalf("chaos banner missing:\n%s", refOut)
	}
	// Run 1 fails all 3 attempts (quarantined); run 2 heals on retry.
	if !strings.Contains(refOut, "1 runs quarantined") {
		t.Fatalf("quarantine summary missing:\n%s", refOut)
	}

	mustRun(append(chaosArgs, "-out", cut, "-max-runs", "2")...)
	mustRun(append(chaosArgs, "-out", cut, "-resume")...)

	for _, name := range []string{
		campaign.RunsCSVName, campaign.RunsJSONLName,
		campaign.CurvesCSVName, campaign.ECDFCSVName,
		campaign.AggregatesName, campaign.ManifestName,
	} {
		a, err := os.ReadFile(filepath.Join(ref, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(cut, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between uninterrupted and resumed chaos sweep", name)
		}
	}

	// The quarantined run is a status=failed row in the run log.
	runsCSV, err := os.ReadFile(filepath.Join(ref, campaign.RunsCSVName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(runsCSV), "failed") {
		t.Errorf("quarantined run missing from %s:\n%s", campaign.RunsCSVName, runsCSV)
	}

	// Retry flags must be rejected when invalid.
	if _, err := parseArgs([]string{"-out", "d", "-run-retries", "-1"}); err == nil {
		t.Error("negative -run-retries accepted")
	}
}
