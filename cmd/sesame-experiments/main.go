// Command sesame-experiments regenerates every table and figure of the
// paper's evaluation section (§V plus the Fig. 1 model and the
// DESIGN.md ablations).
//
// Usage:
//
//	sesame-experiments -exp all           # everything
//	sesame-experiments -exp fig5          # §V-A battery failure / availability
//	sesame-experiments -exp accuracy      # §V-B SAR accuracy
//	sesame-experiments -exp fig6          # §V-C spoofing trajectory + detection
//	sesame-experiments -exp fig7          # §V-C collaborative safe landing
//	sesame-experiments -exp fig1          # ConSert network evaluation
//	sesame-experiments -exp ablations     # design-choice ablations
//	sesame-experiments -exp comms         # degraded-comms robustness matrix
//	sesame-experiments -exp obsv          # observability self-measurement
//	sesame-experiments -exp flightrec     # black-box crash/resume replay
//	sesame-experiments -exp campaign      # Monte Carlo campaign engine smoke
//	sesame-experiments -exp chaos         # deterministic chaos harness + degradation
//	sesame-experiments -exp scenarios     # declarative scenario generator determinism
//	sesame-experiments -exp missionhost   # multi-tenant mission host determinism + load
package main

import (
	"flag"
	"fmt"
	"os"

	"sesame/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all|fig1|fig5|accuracy|fig6|fig7|ablations|patterns|night|comms|obsv|flightrec|campaign|chaos|scenarios|missionhost")
	seed := flag.Int64("seed", 1, "simulation seed")
	csvDir := flag.String("csv", "", "when set, also write raw series as CSV files into this directory")
	flag.Parse()

	writeCSV := func(fn func(string) error) error {
		if *csvDir == "" {
			return nil
		}
		return fn(*csvDir)
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "sesame-experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig1", func() error {
		r, err := experiments.RunFig1()
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return nil
	})
	run("fig5", func() error {
		r, err := experiments.RunFig5(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return writeCSV(r.WriteCSV)
	})
	run("accuracy", func() error {
		r, err := experiments.RunAccuracy(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return writeCSV(r.WriteCSV)
	})
	run("fig6", func() error {
		r, err := experiments.RunFig6(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return writeCSV(r.WriteCSV)
	})
	run("fig7", func() error {
		r, err := experiments.RunFig7(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		stats, err := experiments.RunFig7Stats(20)
		if err != nil {
			return err
		}
		stats.Print(os.Stdout)
		return writeCSV(r.WriteCSV)
	})
	run("ablations", func() error {
		r, err := experiments.RunAblations(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return nil
	})
	run("patterns", func() error {
		r, err := experiments.RunPatterns(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return writeCSV(r.WriteCSV)
	})
	run("comms", func() error {
		r, err := experiments.RunComms(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return writeCSV(r.WriteCSV)
	})
	run("night", func() error {
		r, err := experiments.RunNight(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return nil
	})
	run("obsv", func() error {
		r, err := experiments.RunObsv(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		return nil
	})
	run("flightrec", func() error {
		r, err := experiments.RunFlightRec(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		if !r.Match {
			return fmt.Errorf("resumed mission diverged from the uninterrupted run")
		}
		return nil
	})
	run("campaign", func() error {
		r, err := experiments.RunCampaign(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		if !r.Identical {
			return fmt.Errorf("resumed campaign outputs diverged from the uninterrupted sweep")
		}
		if !r.DigestMatch {
			return fmt.Errorf("standalone rerun digest mismatch")
		}
		return nil
	})
	run("chaos", func() error {
		r, err := experiments.RunChaos(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		if !r.Transparent {
			return fmt.Errorf("inert chaos layer perturbed the mission")
		}
		if !r.Reproducible {
			return fmt.Errorf("chaos injections were not reproducible")
		}
		return nil
	})
	run("scenarios", func() error {
		r, err := experiments.RunScenarios(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		if !r.AllHold {
			return fmt.Errorf("a generated scenario was not bit-reproducible")
		}
		return nil
	})
	run("missionhost", func() error {
		r, err := experiments.RunMissionHost(*seed)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		if !r.Match {
			return fmt.Errorf("hosted mission diverged from the standalone run")
		}
		return nil
	})

	switch *exp {
	case "all", "fig1", "fig5", "accuracy", "fig6", "fig7", "ablations", "patterns", "night", "comms", "obsv", "flightrec", "campaign", "chaos", "scenarios", "missionhost":
	default:
		fmt.Fprintf(os.Stderr, "sesame-experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
