// Command sesame-mission runs a full three-UAV SAR mission on the
// integrated platform — the Fig. 4 scenario — printing fleet status
// snapshots as the mission progresses. Optional fault flags reproduce
// the paper's scenarios in one run.
//
// Usage:
//
//	sesame-mission                         # nominal mission, SESAME on
//	sesame-mission -sesame=false           # reactive baseline
//	sesame-mission -battery-fault=60       # §V-A battery collapse at t=60
//	sesame-mission -spoof=30 -spoof-uav=u2 # §V-C spoofing attack at t=30
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sesame"
)

func main() {
	sesameOn := flag.Bool("sesame", true, "enable the SESAME EDDI stack")
	seed := flag.Int64("seed", 1, "simulation seed")
	batteryFault := flag.Float64("battery-fault", 0, "inject a battery collapse on u1 at this mission time (0 = off)")
	spoofAt := flag.Float64("spoof", 0, "start a GPS spoofing attack at this mission time (0 = off)")
	spoofUAV := flag.String("spoof-uav", "u2", "victim of the spoofing attack")
	persons := flag.Int("persons", 10, "persons scattered in the search area")
	horizon := flag.Float64("horizon", 1500, "maximum mission time in seconds")
	every := flag.Float64("status-every", 60, "status print interval in seconds")
	asJSON := flag.Bool("json", false, "print status snapshots as JSON")
	flag.Parse()

	if err := run(*sesameOn, *seed, *batteryFault, *spoofAt, *spoofUAV, *persons, *horizon, *every, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "sesame-mission:", err)
		os.Exit(1)
	}
}

func run(sesameOn bool, seed int64, batteryFault, spoofAt float64, spoofUAV string, persons int, horizon, every float64, asJSON bool) error {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	world := sesame.NewWorld(home, seed)
	for _, id := range []string{"u1", "u2", "u3"} {
		if _, err := world.AddUAV(sesame.UAVConfig{ID: id, Home: home, CruiseSpeedMS: 12}); err != nil {
			return err
		}
	}
	a := sesame.Destination(home, 45, 80)
	b := sesame.Destination(a, 90, 400)
	c := sesame.Destination(b, 0, 400)
	d := sesame.Destination(a, 0, 400)
	area := sesame.Polygon{a, b, c, d}

	var scene *sesame.Scene
	if persons > 0 {
		var err error
		scene, err = sesame.NewRandomScene(area, persons, 0.2, world, "scene")
		if err != nil {
			return err
		}
	}
	cfg := sesame.DefaultPlatformConfig()
	cfg.SESAME = sesameOn
	p, err := sesame.NewPlatform(world, scene, cfg)
	if err != nil {
		return err
	}
	defer p.Close()
	if err := p.StartMission(area); err != nil {
		return err
	}
	if batteryFault > 0 {
		if err := world.ScheduleFault(sesame.BatteryCollapseFault(world.Clock.Now()+batteryFault, "u1", 70, 40)); err != nil {
			return err
		}
		fmt.Printf("scheduled: battery collapse on u1 at t=+%.0f s\n", batteryFault)
	}
	if spoofAt > 0 {
		if err := world.ScheduleFault(sesame.GPSSpoofFault(world.Clock.Now()+spoofAt, spoofUAV, 135, 3)); err != nil {
			return err
		}
		fmt.Printf("scheduled: GPS spoofing on %s at t=+%.0f s\n", spoofUAV, spoofAt)
	}

	nextStatus := world.Clock.Now()
	end := world.Clock.Now() + horizon
	for world.Clock.Now() < end {
		if err := p.Tick(); err != nil {
			return err
		}
		if world.Clock.Now() >= nextStatus {
			printStatus(p.Status(), asJSON)
			nextStatus += every
		}
		if done(p) {
			break
		}
	}
	printStatus(p.Status(), asJSON)
	if av, err := p.Availability(); err == nil {
		fmt.Printf("\nfleet availability: %.1f%%   mission decision: %s\n", av*100, p.Decision())
	}
	return nil
}

// done reports whether the whole fleet is inactive.
func done(p *sesame.Platform) bool {
	for _, u := range p.Status().UAVs {
		switch u.Mode {
		case "mission", "return-to-base", "landing", "emergency-landing":
			return false
		}
	}
	return true
}

func printStatus(s sesame.PlatformStatus, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		_ = enc.Encode(s)
		return
	}
	fmt.Printf("t=%6.0f  decision=%s\n", s.Time, s.Decision)
	for _, u := range s.UAVs {
		fmt.Printf("  %-4s mode=%-18s batt=%5.1f%% PoF=%.3f rel=%-6s wps=%3d",
			u.ID, u.Mode, u.BatteryPct, u.PoF, u.Reliability, u.Waypoints)
		if u.Compromised {
			fmt.Print("  [COMPROMISED]")
		}
		if u.CollocLand {
			fmt.Print("  [collaborative landing]")
		}
		fmt.Println()
	}
}
