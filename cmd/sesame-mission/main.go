// Command sesame-mission runs a full three-UAV SAR mission on the
// integrated platform — the Fig. 4 scenario — printing fleet status
// snapshots as the mission progresses. Optional fault flags reproduce
// the paper's scenarios in one run; the black-box flags record,
// resume and inspect missions through the flight recorder.
//
// Usage:
//
//	sesame-mission                         # nominal mission, SESAME on
//	sesame-mission -sesame=false           # reactive baseline
//	sesame-mission -battery-fault=60       # §V-A battery collapse at t=60
//	sesame-mission -spoof=30 -spoof-uav=u2 # §V-C spoofing attack at t=30
//	sesame-mission -uavs 128 -cells 0      # fleet-scale sharded run
//	sesame-mission -scenario examples/scenarios/maritime_sar.json
//	sesame-mission -scenario urban_canyon -seed 7  # generated archetype
//	sesame-mission -record box/            # fly with the black box on
//	sesame-mission -resume box/            # resume a crashed mission
//	sesame-mission -replay box/            # dump a recording, no sim
//	sesame-mission -debug-addr :6060       # /metrics + /debug/pprof/
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"sesame"
)

// options carries every flag; parseArgs fills it so tests can drive
// run without touching the process-global flag set.
type options struct {
	sesameOn      bool
	seed          int64
	uavs          int
	cells         int
	batteryFault  float64
	spoofAt       float64
	spoofUAV      string
	persons       int
	horizon       float64
	every         float64
	asJSON        bool
	record        string
	snapshotEvery int
	resume        string
	resumeTick    uint64
	replay        string
	debugAddr     string
	chaosPath     string
	scenario      string
}

// parseArgs parses argv (without the program name) into options.
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("sesame-mission", flag.ContinueOnError)
	fs.BoolVar(&o.sesameOn, "sesame", true, "enable the SESAME EDDI stack")
	fs.Int64Var(&o.seed, "seed", 1, "simulation seed")
	fs.IntVar(&o.uavs, "uavs", 3, "fleet size (UAVs u1..uN)")
	fs.IntVar(&o.cells, "cells", 0, "scheduler cells for the sharded fleet pipeline (0 = auto: one cell per 64 UAVs, 1 = unsharded)")
	fs.Float64Var(&o.batteryFault, "battery-fault", 0, "inject a battery collapse on u1 at this mission time (0 = off)")
	fs.Float64Var(&o.spoofAt, "spoof", 0, "start a GPS spoofing attack at this mission time (0 = off)")
	fs.StringVar(&o.spoofUAV, "spoof-uav", "u2", "victim of the spoofing attack")
	fs.IntVar(&o.persons, "persons", 10, "persons scattered in the search area")
	fs.Float64Var(&o.horizon, "horizon", 1500, "maximum mission time in seconds")
	fs.Float64Var(&o.every, "status-every", 60, "status print interval in seconds")
	fs.BoolVar(&o.asJSON, "json", false, "print status snapshots as JSON")
	fs.StringVar(&o.record, "record", "", "record the mission into this black-box directory")
	fs.IntVar(&o.snapshotEvery, "snapshot-every", 50, "full checkpoint cadence in ticks while recording")
	fs.StringVar(&o.resume, "resume", "", "resume a crashed mission from this black-box directory (pass the same scenario flags)")
	fs.Uint64Var(&o.resumeTick, "resume-tick", 0, "resume from the newest checkpoint at or before this tick (0 = latest)")
	fs.StringVar(&o.replay, "replay", "", "dump this black-box recording and exit (no simulation)")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "serve /metrics and /debug/pprof/ on this address")
	fs.StringVar(&o.chaosPath, "chaos", "", "inject faults from this chaos plan JSON (deterministic per plan seed; pass the same plan when resuming)")
	fs.StringVar(&o.scenario, "scenario", "", "fly a declarative scenario: a strict-JSON file (see examples/scenarios/) or a generator archetype (maritime_sar, urban_canyon, multi_site; seeded by -seed)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.scenario != "" {
		// A scenario declares its own fleet, faults, chaos and horizon;
		// combining it with the classic scenario flags would silently
		// ignore one side or the other.
		switch {
		case o.record != "" || o.resume != "" || o.replay != "":
			return o, errors.New("-scenario does not combine with the black-box flags")
		case o.chaosPath != "":
			return o, errors.New("-scenario does not combine with -chaos (embed the plan in the scenario's chaos field)")
		case o.batteryFault != 0 || o.spoofAt != 0:
			return o, errors.New("-scenario does not combine with -battery-fault/-spoof (declare them in the scenario timeline)")
		}
	}
	if o.record != "" && o.resume != "" && o.record == o.resume {
		return o, errors.New("-record and -resume must name different directories (appending to the recording being resumed would corrupt it)")
	}
	if o.uavs < 1 {
		return o, fmt.Errorf("-uavs %d: the fleet needs at least one UAV", o.uavs)
	}
	if o.cells < 0 {
		return o, fmt.Errorf("-cells %d: must be >= 0 (0 = auto)", o.cells)
	}
	return o, nil
}

func main() {
	opts, err := parseArgs(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sesame-mission:", err)
		os.Exit(1)
	}
}

// run executes one invocation: a replay dump, or a (possibly recorded
// and/or resumed) mission.
func run(opts options, out io.Writer) error {
	if opts.replay != "" {
		return replayDump(opts.replay, out)
	}
	if opts.scenario != "" {
		return runScenario(opts, out)
	}

	world, p, chaosLayer, err := buildMission(opts)
	if err != nil {
		return err
	}
	defer p.Close()
	if chaosLayer != nil {
		fmt.Fprintf(out, "chaos armed from %s (plan seed %d)\n", opts.chaosPath, chaosLayer.Plan().Seed)
	}

	if opts.debugAddr != "" {
		ln, err := startDebug(opts.debugAddr, p.Observability())
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(out, "debug endpoints on http://%s/metrics and /debug/pprof/\n", ln.Addr())
	}

	// The mission end is fixed before any restore so a resumed run
	// stops at exactly the tick the uninterrupted run would have.
	end := world.Clock.Now() + opts.horizon

	if opts.resume != "" {
		tick, err := resumeFromBlackBox(opts, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "resumed from %s at tick %d (t=%.0f s)\n", opts.resume, tick, world.Clock.Now())
	}

	if opts.record != "" {
		recOpts := sesame.FlightRecorderOptions{}
		if chaosLayer != nil {
			recOpts = chaosLayer.RecorderOptions(recOpts)
		}
		rec, err := sesame.NewFlightRecorder(opts.record, opts.seed, p.ConfigDigest(),
			opts.snapshotEvery, recOpts)
		if err != nil {
			return err
		}
		defer func() { _ = rec.Close() }()
		p.SetRecorder(rec)
		fmt.Fprintf(out, "black box recording into %s (checkpoint every %d ticks)\n",
			opts.record, opts.snapshotEvery)
	}

	if err := scheduleFaults(opts, world, out); err != nil {
		return err
	}

	nextStatus := world.Clock.Now()
	for world.Clock.Now() < end {
		if err := p.Tick(); err != nil {
			return err
		}
		if world.Clock.Now() >= nextStatus {
			printStatus(out, p.Status(), opts.asJSON)
			nextStatus += opts.every
		}
		if done(p) {
			break
		}
	}
	printStatus(out, p.Status(), opts.asJSON)
	if av, err := p.Availability(); err == nil {
		fmt.Fprintf(out, "\nfleet availability: %.1f%%   mission decision: %s\n", av*100, p.Decision())
	}
	if chaosLayer != nil {
		st := chaosLayer.Stats()
		fmt.Fprintf(out, "chaos injections: %d total (%d monitor panics, %d monitor errors, %d latency spikes, %d bus, %d broker, %d db, %d recorder)\n",
			st.Total(), st.MonitorPanics, st.MonitorErrors, st.MonitorLatency,
			st.BusFailures, st.BrokerFailures, st.DBFailures, st.RecorderFaults)
	}
	return nil
}

// loadScenario resolves the -scenario value: an existing file is
// strict-parsed, anything else must name a generator archetype (seeded
// by -seed). A scenario file's own seed always wins over -seed.
func loadScenario(opts options) (*sesame.Scenario, error) {
	if data, err := os.ReadFile(opts.scenario); err == nil {
		return sesame.LoadScenario(data)
	}
	for _, arch := range sesame.ScenarioArchetypes() {
		if arch == opts.scenario {
			return sesame.GenerateScenario(opts.seed, arch)
		}
	}
	return nil, fmt.Errorf("-scenario %q: not a readable file and not an archetype (known: %v)",
		opts.scenario, sesame.ScenarioArchetypes())
}

// runScenario flies a declarative scenario end to end: the scenario
// supplies world, fleet, faults, links and horizon; the flags only
// choose the platform regime (-sesame, -cells) and reporting.
func runScenario(opts options, out io.Writer) error {
	sc, err := loadScenario(opts)
	if err != nil {
		return err
	}

	cfg := sesame.DefaultPlatformConfig()
	cfg.SESAME = opts.sesameOn
	cfg.Cells = opts.cells
	if opts.debugAddr != "" {
		reg := sesame.NewObsvRegistry()
		reg.SetTrace(sesame.NewObsvTraceRing(4096))
		cfg.Observability = reg
	}
	run, err := sesame.LaunchScenario(sc, cfg)
	if err != nil {
		return err
	}
	p, world := run.Platform, run.World
	defer p.Close()
	fmt.Fprintf(out, "scenario %s: %d UAVs, %d site(s), horizon %.0f s\n",
		sc.Name, len(sc.Fleet), len(sc.Sites), sc.HorizonS)
	if run.Chaos != nil {
		fmt.Fprintf(out, "chaos armed from scenario (plan seed %d)\n", run.Chaos.Plan().Seed)
	}

	if opts.debugAddr != "" {
		ln, err := startDebug(opts.debugAddr, p.Observability())
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(out, "debug endpoints on http://%s/metrics and /debug/pprof/\n", ln.Addr())
	}

	end := world.Clock.Now() + sc.HorizonS
	nextStatus := world.Clock.Now()
	for world.Clock.Now() < end {
		if err := p.Tick(); err != nil {
			return err
		}
		if world.Clock.Now() >= nextStatus {
			printStatus(out, p.Status(), opts.asJSON)
			nextStatus += opts.every
		}
		if done(p) {
			break
		}
	}
	printStatus(out, p.Status(), opts.asJSON)
	if av, err := p.Availability(); err == nil {
		fmt.Fprintf(out, "\nfleet availability: %.1f%%   mission decision: %s\n", av*100, p.Decision())
	}
	if run.Chaos != nil {
		st := run.Chaos.Stats()
		fmt.Fprintf(out, "chaos injections: %d total (%d monitor panics, %d monitor errors, %d latency spikes, %d bus, %d broker, %d db, %d recorder)\n",
			st.Total(), st.MonitorPanics, st.MonitorErrors, st.MonitorLatency,
			st.BusFailures, st.BrokerFailures, st.DBFailures, st.RecorderFaults)
	}
	return nil
}

// buildMission constructs the standard scenario — world, fleet, scene,
// platform, mission start — exactly the same way every run of a given
// option set does, which is what makes black-box resume possible. A
// -chaos plan is part of the scenario: its injections are a pure
// function of (plan seed, sim time), so rebuilding with the same plan
// reproduces them.
func buildMission(opts options) (*sesame.World, *sesame.Platform, *sesame.ChaosLayer, error) {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	world := sesame.NewWorld(home, opts.seed)
	// IDs u1..uN keep the default fleet (and the fault targets u1/u2)
	// identical to every run before the -uavs flag existed.
	for i := 1; i <= opts.uavs; i++ {
		id := fmt.Sprintf("u%d", i)
		if _, err := world.AddUAV(sesame.UAVConfig{ID: id, Home: home, CruiseSpeedMS: 12}); err != nil {
			return nil, nil, nil, err
		}
	}
	area := missionArea(home)

	var scene *sesame.Scene
	if opts.persons > 0 {
		var err error
		scene, err = sesame.NewRandomScene(area, opts.persons, 0.2, world, "scene")
		if err != nil {
			return nil, nil, nil, err
		}
	}

	var chaosLayer *sesame.ChaosLayer
	if opts.chaosPath != "" {
		data, err := os.ReadFile(opts.chaosPath)
		if err != nil {
			return nil, nil, nil, err
		}
		plan, err := sesame.LoadChaosPlan(data)
		if err != nil {
			return nil, nil, nil, err
		}
		if chaosLayer, err = sesame.NewChaosLayer(world, plan); err != nil {
			return nil, nil, nil, err
		}
	}

	cfg := sesame.DefaultPlatformConfig()
	cfg.SESAME = opts.sesameOn
	cfg.Cells = opts.cells
	if chaosLayer != nil {
		if mb := chaosLayer.MonitorBuilder(); mb != nil {
			cfg.ExtraMonitors = append(cfg.ExtraMonitors, mb)
		}
	}
	if opts.debugAddr != "" {
		reg := sesame.NewObsvRegistry()
		reg.SetTrace(sesame.NewObsvTraceRing(4096))
		cfg.Observability = reg
	}
	p, err := sesame.NewPlatform(world, scene, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	if chaosLayer != nil {
		sesame.ArmChaos(chaosLayer, world, p)
	}
	if err := p.StartMission(area); err != nil {
		p.Close()
		return nil, nil, nil, err
	}
	return world, p, chaosLayer, nil
}

// missionArea is the 400 m survey square north-east of home.
func missionArea(home sesame.LatLng) sesame.Polygon {
	a := sesame.Destination(home, 45, 80)
	b := sesame.Destination(a, 90, 400)
	c := sesame.Destination(b, 0, 400)
	d := sesame.Destination(a, 0, 400)
	return sesame.Polygon{a, b, c, d}
}

// scheduleFaults injects the flag-selected fault scenarios. Resumed
// runs re-schedule them identically; injections already applied before
// the checkpoint are dropped by the restore.
func scheduleFaults(opts options, world *sesame.World, out io.Writer) error {
	if opts.batteryFault > 0 {
		at := world.Clock.Now() + opts.batteryFault
		if err := world.ScheduleFault(sesame.BatteryCollapseFault(at, "u1", 70, 40)); err != nil {
			return err
		}
		fmt.Fprintf(out, "scheduled: battery collapse on u1 at t=+%.0f s\n", opts.batteryFault)
	}
	if opts.spoofAt > 0 {
		at := world.Clock.Now() + opts.spoofAt
		if err := world.ScheduleFault(sesame.GPSSpoofFault(at, opts.spoofUAV, 135, 3)); err != nil {
			return err
		}
		fmt.Fprintf(out, "scheduled: GPS spoofing on %s at t=+%.0f s\n", opts.spoofUAV, opts.spoofAt)
	}
	return nil
}

// resumeFromBlackBox overlays the recording's newest usable checkpoint
// onto the freshly built scenario and returns the restored tick.
func resumeFromBlackBox(opts options, p *sesame.Platform) (uint64, error) {
	snap, hdr, err := sesame.LatestFlightSnapshot(opts.resume, opts.resumeTick)
	if err != nil {
		return 0, err
	}
	if hdr.Seed != opts.seed {
		return 0, fmt.Errorf("recording was flown with -seed %d, not %d", hdr.Seed, opts.seed)
	}
	if hdr.ConfigDigest != p.ConfigDigest() {
		return 0, fmt.Errorf("recording config digest %s does not match this platform (%s); pass the same scenario flags", hdr.ConfigDigest, p.ConfigDigest())
	}
	var ps sesame.PlatformCheckpoint
	if err := json.Unmarshal(snap.State, &ps); err != nil {
		return 0, fmt.Errorf("decode checkpoint: %w", err)
	}
	if err := p.RestoreCheckpoint(&ps); err != nil {
		return 0, err
	}
	return snap.Tick, nil
}

// replayDump prints a recording's header, integrity summary and the
// recorded tick stream's tail — the post-incident inspection view.
func replayDump(dir string, out io.Writer) error {
	r, err := sesame.OpenFlightRecording(dir)
	if err != nil {
		return err
	}
	hdr := r.Header()
	fmt.Fprintf(out, "recording %s\n", dir)
	fmt.Fprintf(out, "  format v%d  seed %d  snapshot every %d ticks\n", hdr.Version, hdr.Seed, hdr.SnapshotEvery)
	fmt.Fprintf(out, "  config %s\n", hdr.ConfigDigest)

	counts := map[string]int{}
	var snapshotTicks []uint64
	var lastTick json.RawMessage
	var readErr error
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A torn tail (the recorded process died mid-write) ends
			// the usable prefix; everything before it is intact.
			readErr = err
			break
		}
		switch rec.Type {
		case sesame.FlightRecordTick:
			counts["tick"]++
			lastTick = append(lastTick[:0], rec.Payload...)
		case sesame.FlightRecordEvent:
			counts["event"]++
		case sesame.FlightRecordAdvice:
			counts["advice"]++
		case sesame.FlightRecordFault:
			counts["fault"]++
		case sesame.FlightRecordSnapshot:
			counts["snapshot"]++
			if s, err := sesame.DecodeFlightSnapshot(rec.Payload); err == nil {
				snapshotTicks = append(snapshotTicks, s.Tick)
			}
		case sesame.FlightRecordBus:
			counts["bus"]++
		}
	}
	fmt.Fprintf(out, "  records: %d ticks, %d events, %d advice, %d faults, %d bus, %d snapshots\n",
		counts["tick"], counts["event"], counts["advice"], counts["fault"], counts["bus"], counts["snapshot"])
	if len(snapshotTicks) > 0 {
		fmt.Fprintf(out, "  checkpoints at ticks %v\n", snapshotTicks)
	}
	if lastTick != nil {
		fmt.Fprintf(out, "  last recorded tick: %s\n", lastTick)
	}
	if readErr != nil {
		fmt.Fprintf(out, "  torn tail after last intact record: %v\n", readErr)
	}
	return nil
}

// startDebug serves the observability endpoints on addr, returning the
// bound listener so callers (and tests, via port 0) can find it.
func startDebug(addr string, reg *sesame.ObsvRegistry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, sesame.ObsvDebugMux(reg)) }()
	return ln, nil
}

// done reports whether the whole fleet is inactive.
func done(p *sesame.Platform) bool {
	for _, u := range p.Status().UAVs {
		switch u.Mode {
		case "mission", "return-to-base", "landing", "emergency-landing":
			return false
		}
	}
	return true
}

func printStatus(out io.Writer, s sesame.PlatformStatus, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(out)
		_ = enc.Encode(s)
		return
	}
	fmt.Fprintf(out, "t=%6.0f  decision=%s\n", s.Time, s.Decision)
	for _, u := range s.UAVs {
		fmt.Fprintf(out, "  %-4s mode=%-18s batt=%5.1f%% PoF=%.3f rel=%-6s wps=%3d",
			u.ID, u.Mode, u.BatteryPct, u.PoF, u.Reliability, u.Waypoints)
		if u.Compromised {
			fmt.Fprint(out, "  [COMPROMISED]")
		}
		if u.CollocLand {
			fmt.Fprint(out, "  [collaborative landing]")
		}
		fmt.Fprintln(out)
	}
}
