package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sesame"
)

func TestParseArgsDefaults(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !o.sesameOn || o.seed != 1 || o.persons != 10 || o.horizon != 1500 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
	if o.uavs != 3 || o.cells != 0 {
		t.Fatalf("fleet flags must default to 3 UAVs with auto cells: %+v", o)
	}
	if o.record != "" || o.resume != "" || o.replay != "" || o.debugAddr != "" {
		t.Fatalf("black-box flags must default off: %+v", o)
	}
	if o.snapshotEvery != 50 || o.resumeTick != 0 {
		t.Fatalf("unexpected recorder defaults: %+v", o)
	}
}

func TestParseArgsFlags(t *testing.T) {
	o, err := parseArgs([]string{
		"-seed", "9", "-sesame=false", "-persons", "3",
		"-uavs", "128", "-cells", "4",
		"-record", "box", "-snapshot-every", "10",
		"-replay", "old", "-debug-addr", ":0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.seed != 9 || o.sesameOn || o.persons != 3 {
		t.Fatalf("scenario flags not applied: %+v", o)
	}
	if o.uavs != 128 || o.cells != 4 {
		t.Fatalf("fleet flags not applied: %+v", o)
	}
	if o.record != "box" || o.snapshotEvery != 10 || o.replay != "old" || o.debugAddr != ":0" {
		t.Fatalf("black-box flags not applied: %+v", o)
	}
}

func TestParseArgsRejects(t *testing.T) {
	if _, err := parseArgs([]string{"stray"}); err == nil {
		t.Error("stray positional argument must fail")
	}
	if _, err := parseArgs([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag must fail")
	}
	if _, err := parseArgs([]string{"-record", "box", "-resume", "box"}); err == nil {
		t.Error("recording into the directory being resumed must fail")
	}
	if _, err := parseArgs([]string{"-uavs", "0"}); err == nil {
		t.Error("an empty fleet must fail")
	}
	if _, err := parseArgs([]string{"-cells", "-1"}); err == nil {
		t.Error("a negative cell count must fail")
	}
}

// finalStatusJSON returns the last JSON status line a -json run wrote.
func finalStatusJSON(t *testing.T, out string) string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		if strings.HasPrefix(lines[i], "{") {
			return lines[i]
		}
	}
	t.Fatalf("no JSON status line in output:\n%s", out)
	return ""
}

// TestRecordResumeReplay drives the full black-box cycle through the
// CLI entry points: a recorded mission, resumed mid-flight on a fresh
// process, must print a final fleet status byte-identical to the
// uninterrupted run's; the replay dump must describe the recording.
func TestRecordResumeReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "box")
	base := options{
		sesameOn: true, seed: 7, uavs: 3, spoofAt: 30, spoofUAV: "u2",
		persons: 5, horizon: 400, every: 1e9, asJSON: true,
		snapshotEvery: 25,
	}

	var plain bytes.Buffer
	if err := run(base, &plain); err != nil {
		t.Fatal(err)
	}
	want := finalStatusJSON(t, plain.String())

	recOpts := base
	recOpts.record = dir
	var recorded bytes.Buffer
	if err := run(recOpts, &recorded); err != nil {
		t.Fatal(err)
	}
	if got := finalStatusJSON(t, recorded.String()); got != want {
		t.Errorf("recording perturbed the mission:\n got %s\nwant %s", got, want)
	}

	resOpts := base
	resOpts.resume = dir
	resOpts.resumeTick = 200
	var resumed bytes.Buffer
	if err := run(resOpts, &resumed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed.String(), "resumed from") {
		t.Errorf("resume banner missing:\n%s", resumed.String())
	}
	if got := finalStatusJSON(t, resumed.String()); got != want {
		t.Errorf("resumed mission diverges:\n got %s\nwant %s", got, want)
	}

	var dump bytes.Buffer
	if err := run(options{replay: dir}, &dump); err != nil {
		t.Fatal(err)
	}
	for _, wantFrag := range []string{"seed 7", "snapshot every 25 ticks", "checkpoints at ticks", "last recorded tick"} {
		if !strings.Contains(dump.String(), wantFrag) {
			t.Errorf("replay dump missing %q:\n%s", wantFrag, dump.String())
		}
	}
}

// TestShardedMissionResume drives the black-box cycle on a sharded
// fleet: a -uavs 8 -cells 2 mission recorded and resumed mid-flight
// must end byte-identical to the uninterrupted sharded run.
func TestShardedMissionResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "box")
	base := options{
		sesameOn: true, seed: 5, uavs: 8, cells: 2, persons: 4,
		horizon: 200, every: 1e9, asJSON: true, snapshotEvery: 25,
	}

	var plain bytes.Buffer
	if err := run(base, &plain); err != nil {
		t.Fatal(err)
	}
	want := finalStatusJSON(t, plain.String())

	recOpts := base
	recOpts.record = dir
	if err := run(recOpts, io.Discard); err != nil {
		t.Fatal(err)
	}

	resOpts := base
	resOpts.resume = dir
	resOpts.resumeTick = 100
	var resumed bytes.Buffer
	if err := run(resOpts, &resumed); err != nil {
		t.Fatal(err)
	}
	if got := finalStatusJSON(t, resumed.String()); got != want {
		t.Errorf("resumed sharded mission diverges:\n got %s\nwant %s", got, want)
	}

	// The cell layout is part of the config digest: a recording flown
	// sharded must refuse to resume into an unsharded platform.
	wrongCells := base
	wrongCells.resume = dir
	wrongCells.cells = 1
	if err := run(wrongCells, io.Discard); err == nil || !strings.Contains(err.Error(), "config digest") {
		t.Errorf("resuming with different -cells must fail with a digest message, got %v", err)
	}
}

func TestResumeRejectsWrongScenario(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "box")
	base := options{
		sesameOn: true, seed: 3, uavs: 3, persons: 0, horizon: 120, every: 1e9,
		asJSON: true, snapshotEvery: 20, record: dir,
	}
	if err := run(base, io.Discard); err != nil {
		t.Fatal(err)
	}

	wrongSeed := base
	wrongSeed.record = ""
	wrongSeed.resume = dir
	wrongSeed.seed = 4
	if err := run(wrongSeed, io.Discard); err == nil || !strings.Contains(err.Error(), "-seed") {
		t.Errorf("wrong seed must fail with a seed message, got %v", err)
	}

	wrongCfg := base
	wrongCfg.record = ""
	wrongCfg.resume = dir
	wrongCfg.sesameOn = false
	if err := run(wrongCfg, io.Discard); err == nil || !strings.Contains(err.Error(), "config digest") {
		t.Errorf("wrong config must fail with a digest message, got %v", err)
	}
}

// TestDebugEndpoints exercises the -debug-addr surface: the bound
// listener must serve the Prometheus exposition and the pprof index.
func TestDebugEndpoints(t *testing.T) {
	reg := sesame.NewObsvRegistry()
	reg.Counter("sesame_platform_ticks_total", "").Inc()
	ln, err := startDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ln.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "sesame_platform_ticks_total") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected:\n%s", body)
	}
}

// TestChaosMissionCLI drives the -chaos flag end to end: the armed
// plan must announce itself and report injections, two identical
// invocations must agree byte-for-byte on the final fleet status, and
// a recorded chaos mission resumed mid-flight (same plan passed again)
// must rejoin that status exactly.
func TestChaosMissionCLI(t *testing.T) {
	planPath := filepath.Join(t.TempDir(), "plan.json")
	planJSON := `{
  "name": "cli-smoke",
  "seed": 7,
  "monitors": [{"uav": "u1", "mode": "error", "window": {"from_s": 60, "to_s": 100}, "prob": 1}],
  "bus": [{"match": "/uav/", "window": {"from_s": 30, "to_s": 200}, "prob": 0.05}],
  "db": [{"window": {"to_s": 300}, "prob": 0.2}]
}`
	if err := os.WriteFile(planPath, []byte(planJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseArgs([]string{"-chaos", planPath}); err != nil {
		t.Fatalf("-chaos flag rejected: %v", err)
	}

	base := options{
		sesameOn: true, seed: 7, uavs: 3, spoofAt: 30, spoofUAV: "u2",
		persons: 5, horizon: 400, every: 1e9, asJSON: true,
		snapshotEvery: 25, chaosPath: planPath,
	}
	var first bytes.Buffer
	if err := run(base, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "chaos armed from") {
		t.Errorf("chaos banner missing:\n%s", first.String())
	}
	if !strings.Contains(first.String(), "chaos injections:") {
		t.Errorf("chaos stats line missing:\n%s", first.String())
	}
	want := finalStatusJSON(t, first.String())

	var second bytes.Buffer
	if err := run(base, &second); err != nil {
		t.Fatal(err)
	}
	if got := finalStatusJSON(t, second.String()); got != want {
		t.Errorf("chaos mission not reproducible:\n got %s\nwant %s", got, want)
	}

	dir := filepath.Join(t.TempDir(), "box")
	recOpts := base
	recOpts.record = dir
	var recorded bytes.Buffer
	if err := run(recOpts, &recorded); err != nil {
		t.Fatal(err)
	}
	if got := finalStatusJSON(t, recorded.String()); got != want {
		t.Errorf("recording perturbed the chaos mission:\n got %s\nwant %s", got, want)
	}

	resOpts := base
	resOpts.resume = dir
	resOpts.resumeTick = 200
	var resumed bytes.Buffer
	if err := run(resOpts, &resumed); err != nil {
		t.Fatal(err)
	}
	if got := finalStatusJSON(t, resumed.String()); got != want {
		t.Errorf("resumed chaos mission diverges:\n got %s\nwant %s", got, want)
	}
}

// TestChaosMissionRejectsBadPlan pins the loud-failure contract for
// misspelled or invalid plan files.
func TestChaosMissionRejectsBadPlan(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"typo.json":    `{"monitros": []}`,
		"invalid.json": `{"monitors": [{"mode": "explode", "prob": 1}]}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(options{sesameOn: true, uavs: 3, horizon: 10, every: 1e9, chaosPath: path}, io.Discard); err == nil {
			t.Errorf("%s: bad plan silently accepted", name)
		}
	}
	if err := run(options{sesameOn: true, uavs: 3, horizon: 10, every: 1e9,
		chaosPath: filepath.Join(dir, "missing.json")}, io.Discard); err == nil {
		t.Error("missing plan file silently accepted")
	}
}
