// Command sesame-eddi-export emits the design-time EDDI artefacts for
// one UAV as JSON — the exchange-document side of the Executable
// Digital Dependability Identity concept (paper §III): the identity
// manifest listing every runtime model, the §V-C attack tree, and the
// SafeDrones fault-tree summary (minimal cut sets and Birnbaum
// importances at the mission horizon).
//
//	sesame-eddi-export -uav u1 -horizon 510
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"sesame/internal/assurance"
	"sesame/internal/attacktree"
	"sesame/internal/conserts"
	"sesame/internal/eddi"
	"sesame/internal/safedrones"
)

func main() {
	uav := flag.String("uav", "u1", "UAV id to export")
	horizon := flag.Float64("horizon", 510, "mission horizon in seconds for importance measures")
	flag.Parse()
	if err := run(*uav, *horizon); err != nil {
		fmt.Fprintln(os.Stderr, "sesame-eddi-export:", err)
		os.Exit(1)
	}
}

type faultTreeSummary struct {
	TopEvent       string             `json:"topEvent"`
	HorizonS       float64            `json:"horizonSeconds"`
	TopProbability float64            `json:"topProbability"`
	MinimalCutSets [][]string         `json:"minimalCutSets"`
	Birnbaum       map[string]float64 `json:"birnbaumImportance"`
	// Model is the full executable tree (gates, basic events and the
	// Markov chains behind the complex basic events).
	Model json.RawMessage `json:"model"`
}

type export struct {
	Identity      *eddi.Identity   `json:"identity"`
	AssuranceCase json.RawMessage  `json:"assuranceCase"`
	AttackTree    json.RawMessage  `json:"attackTree"`
	ConSerts      json.RawMessage  `json:"conserts"`
	FaultTree     faultTreeSummary `json:"faultTree"`
}

func run(uav string, horizon float64) error {
	identity := eddi.UAVIdentity(uav)
	if err := identity.Validate(); err != nil {
		return err
	}

	at, err := attacktree.SpoofingTree(uav)
	if err != nil {
		return err
	}
	atJSON, err := json.Marshal(at)
	if err != nil {
		return err
	}

	gsn, err := assurance.UAVCase(uav)
	if err != nil {
		return err
	}
	gsnJSON, err := json.Marshal(gsn)
	if err != nil {
		return err
	}

	comp, err := conserts.BuildUAVComposition()
	if err != nil {
		return err
	}
	compJSON, err := json.Marshal(comp)
	if err != nil {
		return err
	}

	cfg := safedrones.DefaultConfig()
	tree, err := safedrones.DesignTimeTree(cfg, safedrones.BatteryStress{ChargePct: 80, TempC: 35})
	if err != nil {
		return err
	}
	top, err := tree.Probability(horizon)
	if err != nil {
		return err
	}
	imp, err := tree.BirnbaumImportance(horizon)
	if err != nil {
		return err
	}
	ftJSON, err := json.Marshal(tree)
	if err != nil {
		return err
	}
	out := export{
		Identity:      identity,
		AssuranceCase: gsnJSON,
		AttackTree:    atJSON,
		ConSerts:      compJSON,
		FaultTree: faultTreeSummary{
			TopEvent:       tree.Top().Name(),
			HorizonS:       horizon,
			TopProbability: top,
			MinimalCutSets: tree.MinimalCutSets(),
			Birnbaum:       imp,
			Model:          ftJSON,
		},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}

	// Human-readable views on stderr: the argument, then the
	// importance ranking.
	fmt.Fprintln(os.Stderr, "\nAssurance case:")
	gsn.Render(os.Stderr)

	// Human-readable importance ranking on stderr.
	type rank struct {
		name string
		v    float64
	}
	var ranks []rank
	for k, v := range imp {
		ranks = append(ranks, rank{k, v})
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].v > ranks[j].v })
	fmt.Fprintf(os.Stderr, "\nBirnbaum importance at t=%.0f s (most critical first):\n", horizon)
	for _, r := range ranks {
		fmt.Fprintf(os.Stderr, "  %-12s %.6f\n", r.name, r.v)
	}
	return nil
}
