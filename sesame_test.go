package sesame_test

import (
	"testing"

	"sesame"
)

// The public facade is exercised end-to-end by the examples and the
// root benchmarks; these tests pin the API contracts a downstream user
// relies on.

func TestPublicGeodesy(t *testing.T) {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	p := sesame.Destination(home, 90, 1000)
	if d := sesame.Haversine(home, p); d < 999 || d > 1001 {
		t.Fatalf("distance = %v", d)
	}
	if b := sesame.InitialBearing(home, p); b < 89 || b > 91 {
		t.Fatalf("bearing = %v", b)
	}
	proj := sesame.NewProjection(home)
	enu := proj.ToENU(p)
	if enu.East < 999 || enu.East > 1001 {
		t.Fatalf("ENU = %+v", enu)
	}
	fix, err := sesame.Triangulate([]sesame.BearingObservation{
		{Observer: home, Bearing: 90, Range: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := sesame.Haversine(fix, p); d > 1 {
		t.Fatalf("triangulated fix %v m off", d)
	}
}

func TestPublicWorldAndSafety(t *testing.T) {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	world := sesame.NewWorld(home, 5)
	uav, err := world.AddUAV(sesame.UAVConfig{ID: "u1", Home: home})
	if err != nil {
		t.Fatal(err)
	}
	if uav.Mode() != sesame.ModeIdle {
		t.Fatalf("mode = %v", uav.Mode())
	}
	monitor, err := sesame.NewSafetyMonitor("u1", sesame.DefaultSafetyConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := monitor.Observe(sesame.SafetyTelemetry{
		Time: 1, ChargePct: 100, TempC: 25, CommsOK: true, Airborne: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Level != sesame.ReliabilityHigh || a.Advice != sesame.SafetyContinue {
		t.Fatalf("assessment = %+v", a)
	}
}

func TestPublicConSerts(t *testing.T) {
	comp, err := sesame.BuildUAVComposition()
	if err != nil {
		t.Fatal(err)
	}
	action, _, err := sesame.EvaluateUAV(comp, sesame.Evidence{})
	if err != nil {
		t.Fatal(err)
	}
	if action != sesame.ActionEmergencyLand {
		t.Fatalf("empty evidence action = %v", action)
	}
	d, err := sesame.DecideMission(map[string]sesame.UAVAction{
		"u1": sesame.ActionContinue,
	})
	if err != nil || d != sesame.MissionAsPlanned {
		t.Fatalf("decision = %v err = %v", d, err)
	}
}

func TestPublicPlanningAndMeasures(t *testing.T) {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	a := sesame.Destination(home, 45, 50)
	b := sesame.Destination(a, 90, 200)
	c := sesame.Destination(b, 0, 200)
	d := sesame.Destination(a, 0, 200)
	area := sesame.Polygon{a, b, c, d}
	path, err := sesame.BoustrophedonPath(area, 25)
	if err != nil {
		t.Fatal(err)
	}
	frac, err := sesame.CoverageFraction(area, path, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.9 {
		t.Fatalf("coverage = %v", frac)
	}
	mission, err := sesame.PlanSARMission(area, []string{"u1", "u2"}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(mission.Assignments) != 2 {
		t.Fatalf("assignments = %d", len(mission.Assignments))
	}
	if len(sesame.DistanceMeasures()) != 6 {
		t.Fatal("expected 6 distance measures")
	}
	if _, err := sesame.DistanceMeasureByName("wasserstein"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSecurityChain(t *testing.T) {
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	world := sesame.NewWorld(home, 6)
	if _, err := world.AddUAV(sesame.UAVConfig{ID: "u1", Home: home}); err != nil {
		t.Fatal(err)
	}
	broker := sesame.NewAlertBroker()
	det, err := sesame.NewIntrusionDetector(world, broker, sesame.DefaultIDSConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	eddi, err := sesame.NewSecurityEDDI(broker)
	if err != nil {
		t.Fatal(err)
	}
	defer eddi.Close()
	tree, err := sesame.SpoofingAttackTree("u1")
	if err != nil {
		t.Fatal(err)
	}
	if err := eddi.Monitor("u1", tree); err != nil {
		t.Fatal(err)
	}
	if eddi.Compromised("u1") {
		t.Fatal("fresh EDDI must not report compromise")
	}
}
