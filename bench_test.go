package sesame_test

// One benchmark per evaluation artefact of the paper, as required by
// the reproduction harness: Fig. 1 (ConSert network), Fig. 5 / §V-A
// (battery failure PoF + availability), §V-B (SAR accuracy), Fig. 6
// (spoofing trajectory + detection), Fig. 7 (collaborative landing),
// the Fig. 4 platform tick, and the DESIGN.md ablations.

import (
	"fmt"
	"testing"

	"sesame"
	"sesame/internal/experiments"
)

func BenchmarkFig1ConSertEvaluation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5BatteryFailure(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig5(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if r.ThresholdCrossS < 0 {
			b.Fatal("threshold never crossed")
		}
	}
}

func BenchmarkSARAccuracy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAccuracy(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if r.AdaptiveAccuracy <= 0 {
			b.Fatal("no adaptive accuracy")
		}
	}
}

func BenchmarkFig6Spoofing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig6(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if r.DetectionS < 0 {
			b.Fatal("attack undetected")
		}
	}
}

func BenchmarkFig7CollaborativeLanding(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig7(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if !r.LandedOK {
			b.Fatal("victim did not land")
		}
	}
}

func BenchmarkCoveragePatterns(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPatterns(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblations(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlatformMissionTick measures the steady-state cost of one
// integrated platform tick with three UAVs and the full EDDI stack —
// the Fig. 4 runtime loop.
func BenchmarkPlatformMissionTick(b *testing.B) {
	b.ReportAllocs()
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	world := sesame.NewWorld(home, 1)
	for _, id := range []string{"u1", "u2", "u3"} {
		if _, err := world.AddUAV(sesame.UAVConfig{ID: id, Home: home}); err != nil {
			b.Fatal(err)
		}
	}
	a := sesame.Destination(home, 45, 80)
	bb := sesame.Destination(a, 90, 3000)
	c := sesame.Destination(bb, 0, 3000)
	d := sesame.Destination(a, 0, 3000)
	area := sesame.Polygon{a, bb, c, d}
	scene, err := sesame.NewRandomScene(area, 20, 0.2, world, "scene")
	if err != nil {
		b.Fatal(err)
	}
	p, err := sesame.NewPlatform(world, scene, sesame.DefaultPlatformConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	if err := p.StartMission(area); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlatformTickFleet measures the fleet scheduler across fleet
// sizes, serial (Workers=1) vs pooled (Workers=0, machine-sized) vs
// sharded (cell-sharded pipeline: per-cell physics and fused
// prepare+observe on the pool, not just the monitor evaluation). The
// sharded variant forces at least two cells so the small-fleet rows
// measure the sharded pipeline rather than falling back to legacy; at
// 1k and 10k UAVs it uses the production auto layout (one cell per 64
// vehicles). Outputs are bit-identical across workers and cell counts.
func BenchmarkPlatformTickFleet(b *testing.B) {
	b.ReportAllocs()
	home := sesame.LatLng{Lat: 35.1856, Lng: 33.3823}
	a := sesame.Destination(home, 45, 80)
	bb := sesame.Destination(a, 90, 3000)
	c := sesame.Destination(bb, 0, 3000)
	d := sesame.Destination(a, 0, 3000)
	area := sesame.Polygon{a, bb, c, d}
	type mode struct {
		name      string
		workers   int
		cells     int // 0 = legacy pipeline, -1 = sharded (auto, min 2)
		obsv      bool
		snapEvery int // 0 = recorder off
	}
	fullModes := []mode{
		{"serial", 1, 0, false, 0},
		{"pooled", 0, 0, false, 0},
		{"sharded", 0, -1, false, 0},
		// The -obsv variants run with a metrics registry attached;
		// BENCH_PR4.json records the instrumentation overhead
		// (budget: <5% ns/op enabled, zero extra allocs disabled).
		{"serial-obsv", 1, 0, true, 0},
		{"pooled-obsv", 0, 0, true, 0},
		// The -rec variants additionally fly with the black-box
		// flight recorder appending tick/bus/event records every
		// tick, checkpoints effectively disabled; BENCH_PR5.json
		// records the steady-state append-path overhead (budget:
		// <5% ns/op over the -obsv baseline).
		{"serial-rec", 1, 0, true, 1 << 30},
		{"pooled-rec", 0, 0, true, 1 << 30},
		// The -ckpt variants run the full black box with a
		// checkpoint every 50 ticks. Checkpoint cost is O(EDDI
		// history), so this amortized number grows with mission
		// length; BENCH_PR5.json reports it separately.
		{"serial-ckpt", 1, 0, true, 50},
		{"pooled-ckpt", 0, 0, true, 50},
	}
	for _, fleet := range []int{3, 12, 48, 1000, 10000} {
		modes := fullModes
		if fleet >= 1000 {
			// At fleet scale only the three scheduler regimes matter;
			// the instrumentation variants are covered at 3/12/48.
			modes = fullModes[:3]
		}
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%d/%s", fleet, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				world := sesame.NewWorld(home, 1)
				for i := 0; i < fleet; i++ {
					uc := sesame.UAVConfig{ID: fmt.Sprintf("u%05d", i), Home: home}
					if _, err := world.AddUAV(uc); err != nil {
						b.Fatal(err)
					}
				}
				scene, err := sesame.NewRandomScene(area, 20, 0.2, world, "scene")
				if err != nil {
					b.Fatal(err)
				}
				cfg := sesame.DefaultPlatformConfig()
				cfg.Workers = mode.workers
				if mode.cells == -1 {
					cfg.Cells = sesame.AutoCells(fleet)
					if cfg.Cells < 2 {
						cfg.Cells = 2
					}
				}
				if mode.obsv {
					cfg.Observability = sesame.NewObsvRegistry()
				}
				p, err := sesame.NewPlatform(world, scene, cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer p.Close()
				if err := p.StartMission(area); err != nil {
					b.Fatal(err)
				}
				if mode.snapEvery > 0 {
					rec, err := sesame.NewFlightRecorder(b.TempDir(), 1, p.ConfigDigest(), mode.snapEvery,
						sesame.FlightRecorderOptions{})
					if err != nil {
						b.Fatal(err)
					}
					defer rec.Close()
					p.SetRecorder(rec)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := p.Tick(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
