module sesame

go 1.22
