package sesame

import (
	"net/http"

	"sesame/internal/assurance"
	"sesame/internal/attacktree"
	"sesame/internal/chaos"
	"sesame/internal/colloc"
	"sesame/internal/detection"
	"sesame/internal/eddi"
	"sesame/internal/flightrec"
	"sesame/internal/geo"
	"sesame/internal/hiphops"
	"sesame/internal/ids"
	"sesame/internal/linksim"
	"sesame/internal/missionhost"
	"sesame/internal/mqttlite"
	"sesame/internal/obsv"
	"sesame/internal/platform"
	"sesame/internal/safeml"
	"sesame/internal/sar"
	"sesame/internal/scenario"
	"sesame/internal/security"
	"sesame/internal/sinadra"
	"sesame/internal/statdist"
)

// ---- SafeML (internal/safeml, internal/statdist) ----

// PerceptionMonitor is the SafeML sliding-window distribution monitor.
type PerceptionMonitor = safeml.Monitor

// PerceptionConfig parameterizes a PerceptionMonitor.
type PerceptionConfig = safeml.Config

// PerceptionReport is one window evaluation.
type PerceptionReport = safeml.Report

// DistanceMeasure is a two-sample statistical distance.
type DistanceMeasure = statdist.Measure

// DefaultPerceptionConfig returns the §V-B calibration.
func DefaultPerceptionConfig() PerceptionConfig { return safeml.DefaultConfig() }

// NewPerceptionMonitor builds a SafeML monitor around a training
// reference feature matrix.
func NewPerceptionMonitor(reference [][]float64, cfg PerceptionConfig) (*PerceptionMonitor, error) {
	return safeml.NewMonitor(reference, cfg)
}

// DistanceMeasures returns every implemented statistical distance.
func DistanceMeasures() []DistanceMeasure { return statdist.All() }

// DistanceMeasureByName looks a measure up by canonical name.
func DistanceMeasureByName(name string) (DistanceMeasure, error) { return statdist.ByName(name) }

// ---- SINADRA (internal/sinadra) ----

// RiskAssessor is the SINADRA Bayesian dynamic risk assessor.
type RiskAssessor = sinadra.Assessor

// RiskSituation is the runtime evidence snapshot.
type RiskSituation = sinadra.Situation

// RiskAssessment is one evaluation.
type RiskAssessment = sinadra.Assessment

// RiskAdvice is SINADRA's adaptation proposal.
type RiskAdvice = sinadra.Advice

// Risk advice values.
const (
	RiskProceed = sinadra.AdviceProceed
	RiskDescend = sinadra.AdviceDescend
	RiskRescan  = sinadra.AdviceRescan
)

// NewRiskAssessor builds the SAR risk network with the default
// calibration.
func NewRiskAssessor() (*RiskAssessor, error) { return sinadra.NewAssessor(sinadra.DefaultConfig()) }

// ---- Security (internal/ids, internal/attacktree, internal/security) ----

// AlertBroker is the MQTT-style broker carrying IDS alerts.
type AlertBroker = mqttlite.Broker

// NewAlertBroker returns an empty broker.
func NewAlertBroker() *AlertBroker { return mqttlite.NewBroker() }

// IntrusionDetector is the bus-tapping IDS.
type IntrusionDetector = ids.IDS

// IDSConfig tunes the IDS rule engine.
type IDSConfig = ids.Config

// IDSAlert is one IDS finding.
type IDSAlert = ids.Alert

// DefaultIDSConfig returns the experiment calibration.
func DefaultIDSConfig() IDSConfig { return ids.DefaultConfig() }

// NewIntrusionDetector attaches an IDS to a world's bus, publishing to
// broker.
func NewIntrusionDetector(w *World, broker *AlertBroker, cfg IDSConfig) (*IntrusionDetector, error) {
	return ids.New(w.Bus, broker, cfg)
}

// AttackTree is a validated Security EDDI attack tree.
type AttackTree = attacktree.Tree

// SpoofingAttackTree builds the §V-C ROS/GNSS spoofing tree for a UAV.
func SpoofingAttackTree(uav string) (*AttackTree, error) { return attacktree.SpoofingTree(uav) }

// SecurityEDDI is the attack-tree runtime monitor.
type SecurityEDDI = security.EDDI

// SecurityEvent is a detected compromise or progress report.
type SecurityEvent = security.Event

// NewSecurityEDDI binds a Security EDDI to the alert broker.
func NewSecurityEDDI(broker *AlertBroker) (*SecurityEDDI, error) { return security.New(broker) }

// ---- Collaborative Localization (internal/colloc) ----

// Observer is one assisting UAV's detection/depth stack.
type Observer = colloc.Observer

// Localizer fuses observations over time.
type Localizer = colloc.Localizer

// AssistedLanding runs the Fig. 7 GPS-denied landing loop.
type AssistedLanding = colloc.Controller

// NewObserver wires an observer on an assisting UAV using the world's
// named random stream for camera noise.
func NewObserver(assistant *UAV, w *World, stream string) (*Observer, error) {
	return colloc.NewObserver(assistant, w.Clock.Stream(stream))
}

// NewAssistedLanding steers the affected UAV to target using only the
// observers' fused estimates.
func NewAssistedLanding(affected *UAV, target LatLng, observers []*Observer, w *World) (*AssistedLanding, error) {
	return colloc.NewController(affected, target, observers, w)
}

// ---- Detection substrate (internal/detection) ----

// Detector is the altitude/visibility-calibrated person detector.
type Detector = detection.Detector

// Scene is the ground-truth person layout.
type Scene = detection.Scene

// DetectionConditions describe one capture.
type DetectionConditions = detection.Conditions

// DetectionFrame is one processed capture.
type DetectionFrame = detection.Frame

// NewDetector builds the calibrated detector using the world's named
// random stream.
func NewDetector(w *World, stream string) (*Detector, error) {
	return detection.NewDetector(w.Clock.Stream(stream))
}

// NewRandomScene scatters persons over the area.
func NewRandomScene(area Polygon, n int, pCritical float64, w *World, stream string) (*Scene, error) {
	return detection.NewRandomScene(area, n, pCritical, w.Clock.Stream(stream))
}

// ---- SAR algorithms (internal/sar) ----

// SARMission is a planned multi-UAV coverage mission.
type SARMission = sar.Mission

// PathPlanner is a coverage algorithm hosted by the Task Manager.
type PathPlanner = sar.PathPlanner

// PlanSARMission partitions the area and plans boustrophedon sweeps.
func PlanSARMission(area Polygon, uavs []string, spacingM float64) (*SARMission, error) {
	return sar.PlanMission(area, uavs, spacingM)
}

// PlanSARMissionWith selects the coverage planner per strip.
func PlanSARMissionWith(area Polygon, uavs []string, spacingM float64, planner PathPlanner) (*SARMission, error) {
	return sar.PlanMissionWith(area, uavs, spacingM, planner)
}

// BoustrophedonPath plans a serpentine sweep over one area.
func BoustrophedonPath(area Polygon, spacingM float64) ([]LatLng, error) {
	return sar.BoustrophedonPath(area, spacingM)
}

// SpiralPath plans a perimeter-inward rectangular spiral.
func SpiralPath(area Polygon, spacingM float64) ([]LatLng, error) {
	return sar.SpiralPath(area, spacingM)
}

// ExpandingSquarePath plans the SAR expanding-square search outward
// from the area centre (the target's last known position).
func ExpandingSquarePath(area Polygon, spacingM float64) ([]LatLng, error) {
	return sar.ExpandingSquarePath(area, spacingM)
}

// CoverageFraction scores how much of the area a path covers.
func CoverageFraction(area Polygon, path []geo.LatLng, radiusM, cellM float64) (float64, error) {
	return sar.CoverageFraction(area, path, radiusM, cellM)
}

// ---- Design-time analysis (internal/hiphops, internal/assurance) ----

// FailureSystem is a component architecture annotated with local
// failure data, from which fault trees are synthesized.
type FailureSystem = hiphops.System

// FailureComponent is one annotated architecture block.
type FailureComponent = hiphops.Component

// NewFailureSystem returns an empty architecture model.
func NewFailureSystem() *FailureSystem { return hiphops.NewSystem() }

// UAVNavigationSystem returns the worked UAV "loss of navigation"
// architecture with a power common cause.
func UAVNavigationSystem() (*FailureSystem, error) { return hiphops.UAVNavigationSystem() }

// AssuranceCase is a validated GSN argument.
type AssuranceCase = assurance.Case

// UAVAssuranceCase builds the SESAME SAR dependability argument for
// one UAV, wired to the executable models and reproduced experiments.
func UAVAssuranceCase(uav string) (*AssuranceCase, error) { return assurance.UAVCase(uav) }

// ---- EDDI runtime (internal/eddi) ----

// RuntimeMonitor is the common interface every EDDI technology
// implements to join a UAV's monitor chain: SafeDrones, SafeML,
// SINADRA, the baseline policy and the collaborative-localization gate
// all observe the same frozen telemetry snapshot and return events plus
// flight advice. Custom monitors plug in via
// PlatformConfig.ExtraMonitors.
type RuntimeMonitor = eddi.Runtime

// MonitorSnapshot is the per-UAV telemetry snapshot frozen at the start
// of each platform tick and handed to every monitor in the chain.
type MonitorSnapshot = eddi.Snapshot

// MonitorDerived is the chain blackboard: values earlier monitors
// derive for later ones (PoF, perception uncertainty, risk).
type MonitorDerived = eddi.Derived

// MonitorAdvice is one monitor's proposed intervention.
type MonitorAdvice = eddi.Advice

// MonitorAdviceKind enumerates the interventions a monitor may propose.
type MonitorAdviceKind = eddi.AdviceKind

// Monitor advice kinds.
const (
	AdviceNone          = eddi.AdviceNone
	AdviceDescend       = eddi.AdviceDescend
	AdviceRescan        = eddi.AdviceRescan
	AdviceHold          = eddi.AdviceHold
	AdviceReturnToBase  = eddi.AdviceReturnToBase
	AdviceEmergencyLand = eddi.AdviceEmergencyLand
	AdviceCollabLand    = eddi.AdviceCollabLand
)

// EDDIEvent is one runtime-monitor finding.
type EDDIEvent = eddi.Event

// EDDIKind classifies an event's originating discipline.
type EDDIKind = eddi.Kind

// Event kinds.
const (
	EDDISafety     = eddi.KindSafety
	EDDISecurity   = eddi.KindSecurity
	EDDIPerception = eddi.KindPerception
	EDDIRisk       = eddi.KindRisk
)

// EDDICoordinator is the fleet-wide event log.
type EDDICoordinator = eddi.Coordinator

// ChainResult aggregates one chain evaluation's events and advice.
type ChainResult = eddi.ChainResult

// RunMonitorChain evaluates monitors in order over one snapshot,
// stopping at the first Halt advice.
func RunMonitorChain(monitors []RuntimeMonitor, s MonitorSnapshot) (ChainResult, error) {
	return eddi.RunChain(monitors, s)
}

// ---- Integrated platform (internal/platform) ----

// Platform is the integrated multi-UAV control platform of §IV-A.
type Platform = platform.Platform

// PlatformConfig parameterizes a Platform.
type PlatformConfig = platform.Config

// PlatformStatus is the Fig. 4 fleet snapshot.
type PlatformStatus = platform.Status

// PlatformDrops counts failed data-path operations the platform
// previously discarded silently (exposed in PlatformStatus).
type PlatformDrops = platform.DropCounters

// DefaultPlatformConfig returns the experiment calibration (SESAME on).
func DefaultPlatformConfig() PlatformConfig { return platform.DefaultConfig() }

// AutoCells returns the cell count PlatformConfig.Cells = 0 resolves to
// for an n-UAV fleet: one cell per 64 vehicles.
func AutoCells(n int) int { return platform.AutoCells(n) }

// NewPlatform builds a platform over an existing world and optional
// detection scene.
func NewPlatform(w *World, scene *Scene, cfg PlatformConfig) (*Platform, error) {
	return platform.New(w, scene, cfg)
}

// PlatformHandler serves the platform status over HTTP (the web GUI
// data feed).
func PlatformHandler(p *Platform) http.Handler { return p.Handler() }

// PlatformRetries counts the bounded database retry-with-backoff
// outcomes (exposed in PlatformStatus).
type PlatformRetries = platform.RetryCounters

// ErrDatabaseUnavailable marks a transient mission-database failure;
// the platform retries such writes with backoff instead of dropping
// them.
var ErrDatabaseUnavailable = platform.ErrUnavailable

// ---- Degraded-comms fault layer (internal/linksim) ----

// LinkLayer injects deterministic, seeded link faults (loss, delay,
// duplication, reordering, outage windows) between the UAVs and the
// ground station.
type LinkLayer = linksim.Layer

// Link is one UAV's impaired channel within a LinkLayer.
type Link = linksim.Link

// LinkProfile sets a link's stochastic impairments.
type LinkProfile = linksim.Profile

// LinkStats is a link's frame accounting snapshot.
type LinkStats = linksim.LinkStats

// ErrLinkDown is returned to publishers while a rejecting outage is
// active on their link.
var ErrLinkDown = linksim.ErrLinkDown

// NewLinkLayer creates a fault layer driven by the world's clock and
// attaches it to the world's ROS bus, so each UAV's telemetry crosses
// its configured link. Use AttachBroker to also impair the alert path.
func NewLinkLayer(w *World, name string) *LinkLayer {
	l := linksim.New(w.Clock, name)
	l.AttachBus(w.Bus)
	return l
}

// ---- Black-box flight recorder (internal/flightrec) ----

// FlightRecorder is the black-box mission recorder: an append-only,
// CRC-protected binary segment log of per-tick telemetry, EDDI events,
// fault injections and periodic full-platform checkpoints. Attach one
// with Platform.SetRecorder; a crashed mission then resumes from its
// newest checkpoint bit-identically to the uninterrupted run.
type FlightRecorder = flightrec.Recorder

// FlightRecorderOptions tunes segment rotation and sync behaviour.
type FlightRecorderOptions = flightrec.Options

// FlightRecordingHeader is the self-describing first record of every
// segment: format version, seed, config digest, snapshot cadence.
type FlightRecordingHeader = flightrec.Header

// FlightRecord is one decoded log record.
type FlightRecord = flightrec.Record

// FlightSnapshot is one full-platform checkpoint held in a recording.
type FlightSnapshot = flightrec.Snapshot

// FlightRecordingReader iterates a recording's records in order.
type FlightRecordingReader = flightrec.Reader

// Flight record types.
const (
	FlightRecordHeader   = flightrec.TypeHeader
	FlightRecordTick     = flightrec.TypeTick
	FlightRecordEvent    = flightrec.TypeEvent
	FlightRecordAdvice   = flightrec.TypeAdvice
	FlightRecordFault    = flightrec.TypeFault
	FlightRecordSnapshot = flightrec.TypeSnapshot
	FlightRecordBus      = flightrec.TypeBus
)

// PlatformCheckpoint is the full platform state a recording's snapshot
// records hold (as JSON); Platform.Checkpoint produces one and
// Platform.RestoreCheckpoint overlays one onto a rebuilt scenario.
type PlatformCheckpoint = platform.PlatformSnapshot

// NewFlightRecorder opens a recorder writing into dir, embedding the
// platform's seed and ConfigDigest and checkpointing every
// snapshotEvery ticks.
func NewFlightRecorder(dir string, seed int64, configDigest string, snapshotEvery int, opts FlightRecorderOptions) (*FlightRecorder, error) {
	return flightrec.NewRecorder(dir, seed, configDigest, snapshotEvery, opts)
}

// OpenFlightRecording opens a recording directory for sequential
// reads.
func OpenFlightRecording(dir string) (*FlightRecordingReader, error) {
	return flightrec.OpenReader(dir)
}

// LatestFlightSnapshot returns the newest checkpoint at or before
// maxTick (0 = any), with the recording header for validation.
func LatestFlightSnapshot(dir string, maxTick uint64) (FlightSnapshot, FlightRecordingHeader, error) {
	return flightrec.LatestSnapshot(dir, maxTick)
}

// DecodeFlightSnapshot decodes a FlightRecordSnapshot record payload.
func DecodeFlightSnapshot(payload []byte) (FlightSnapshot, error) {
	return flightrec.DecodeSnapshot(payload)
}

// ---- Chaos engineering (internal/chaos) ----

// ChaosPlan is a declarative, seeded fault-injection schedule: monitor
// panics/errors/latency spikes, bus/broker publish failures, database
// brownouts, recorder faults and campaign worker failures. Every
// injection is a pure function of (plan seed, rule, sim time), so
// chaos-on runs are bit-reproducible.
type ChaosPlan = chaos.Plan

// ChaosLayer executes a ChaosPlan against a running system.
type ChaosLayer = chaos.Layer

// ChaosStats counts the injections a layer performed.
type ChaosStats = chaos.Stats

// LoadChaosPlan parses and validates a JSON chaos plan; unknown fields
// and trailing data are rejected.
func LoadChaosPlan(data []byte) (ChaosPlan, error) { return chaos.LoadPlan(data) }

// NewChaosLayer arms plan against the world's simulation clock. Append
// the layer's MonitorBuilder() (when non-nil) to
// PlatformConfig.ExtraMonitors before building the platform, then call
// ArmChaos after.
func NewChaosLayer(w *World, plan ChaosPlan) (*ChaosLayer, error) { return chaos.New(w.Clock, plan) }

// ArmChaos attaches a chaos layer's bus, broker and mission-database
// injectors to a built platform. Call it after any link-quality layer
// so chaos drops are decided first, and before the mission starts so
// injection windows cover the whole flight.
func ArmChaos(l *ChaosLayer, w *World, p *Platform) {
	l.AttachBus(w.Bus)
	l.AttachBroker(p.Broker)
	if hook := l.DBHook(ErrDatabaseUnavailable); hook != nil {
		p.DB.SetFaultHook(hook)
	}
}

// ---- Declarative scenarios (internal/scenario) ----

// Scenario is a declarative mission description: search areas, wind,
// visibility, a heterogeneous fleet with battery models, link-quality
// profiles, a fault/attack timeline and an optional chaos plan. Load
// one from strict JSON or generate one from a seeded archetype, then
// fly it with LaunchScenario.
type Scenario = scenario.Scenario

// ScenarioRun bundles everything LaunchScenario built: world,
// platform, link layer and chaos layer.
type ScenarioRun = platform.ScenarioRun

// Scenario archetypes for GenerateScenario.
const (
	ScenarioMaritimeSAR = scenario.MaritimeSAR
	ScenarioUrbanCanyon = scenario.UrbanCanyon
	ScenarioMultiSite   = scenario.MultiSite
)

// LoadScenario parses and validates a JSON scenario; unknown fields,
// trailing data and out-of-range values are rejected.
func LoadScenario(data []byte) (*Scenario, error) { return scenario.Load(data) }

// GenerateScenario draws a valid scenario from the seeded archetype
// family — a pure function of (seed, archetype).
func GenerateScenario(seed int64, archetype string) (*Scenario, error) {
	return scenario.Generate(seed, archetype)
}

// ScenarioArchetypes lists the generator's archetype names.
func ScenarioArchetypes() []string { return scenario.Archetypes() }

// LaunchScenario builds a scenario into a running mission: world,
// scene, platform, link layer, chaos layer and fault timeline, with
// the mission started over every declared site. Drive the returned
// platform's tick loop to the scenario horizon, and Close the platform
// when done.
func LaunchScenario(sc *Scenario, cfg PlatformConfig) (*ScenarioRun, error) {
	return platform.LaunchScenario(sc, cfg)
}

// ---- Multi-tenant mission host (internal/missionhost) ----

// MissionHost is the multi-tenant mission registry: thousands of
// independently seeded missions ticked with per-mission budgets on a
// shared bounded worker pool, watched through copy-on-write snapshots,
// with idle missions parked to disk and rehydrated transparently.
type MissionHost = missionhost.Host

// MissionHostConfig bounds a MissionHost: worker pool size, live-set
// capacity, registry capacity, tick budgets, idle parking and the
// rendered-status LRU cache.
type MissionHostConfig = missionhost.Config

// MissionSpec declares one hosted mission: a classic demo fleet, a
// seeded scenario archetype, or an embedded scenario document.
type MissionSpec = missionhost.Spec

// MissionInfo is a mission's registry directory entry.
type MissionInfo = missionhost.Info

// MissionSnapshot is one published copy-on-write view of a hosted
// mission; watchers read it without touching any tick lock.
type MissionSnapshot = missionhost.Snapshot

// MissionSubscriber is a bounded drop-oldest snapshot queue feeding
// one watcher.
type MissionSubscriber = missionhost.Subscriber

// MissionHostStats snapshots the host's counters.
type MissionHostStats = missionhost.Stats

// NewMissionHost builds a mission host, recovering any missions parked
// under the configured park directory.
func NewMissionHost(cfg MissionHostConfig) (*MissionHost, error) { return missionhost.New(cfg) }

// ParseMissionSpec parses a strict-JSON mission spec: unknown fields,
// trailing data and out-of-range values are rejected.
func ParseMissionSpec(data []byte) (MissionSpec, error) { return missionhost.ParseSpec(data) }

// ---- Observability (internal/obsv) ----

// ObsvRegistry is the dependency-free metrics registry. Hand one to
// PlatformConfig.Observability to instrument a platform; nil keeps the
// whole layer disabled at zero cost.
type ObsvRegistry = obsv.Registry

// ObsvTraceRing is the bounded per-tick trace buffer; install one on a
// registry with SetTrace to record (tick, uav, monitor, duration)
// events for the hottest paths.
type ObsvTraceRing = obsv.TraceRing

// NewObsvRegistry returns an empty metrics registry.
func NewObsvRegistry() *ObsvRegistry { return obsv.NewRegistry() }

// NewObsvTraceRing returns a trace ring holding the last n events.
func NewObsvTraceRing(n int) *ObsvTraceRing { return obsv.NewTraceRing(n) }

// ObsvDebugMux mounts the observability endpoints (/metrics in
// Prometheus text format, /debug/pprof/*, /debug/trace) for a registry.
// The registry is internally synchronized, so the mux can be served
// without holding any platform lock.
func ObsvDebugMux(r *ObsvRegistry) *http.ServeMux { return obsv.DebugMux(r) }
